"""Failure bundles: one atomic ``.zip`` holding a dead run's evidence.

A bundle is written when a terminal error escapes a runtime (see
:class:`BundleCapture`, which the runtimes arm behind their
``bundle_out`` knob) or explicitly via :func:`write_failure_bundle`.
Layout (``BUNDLE_SCHEMA_VERSION`` 1)::

    manifest.json     schema, creation time, provenance (host/version/
                      git SHA), run parameters, the error and its cause
                      chain, the pre-computed failure class, the
                      latest-checkpoint pointer
    events.jsonl      flight-recorder tail in the live-stream schema
                      (readable by read_live_events / tiledqr watch)
    inflight.json     started-but-unfinished tasks at the moment of death
    metrics.json      MetricsRegistry.snapshot()
    progress.json     per-device fold (+ full ProgressSnapshot when a
                      tracker was attached)
    plan.json         distribution plan description + DecisionAudit
                      (multiprocess runs / planned CLI runs)
    fault_plan.json   the chaos FaultPlan, when one was active

The zip is written to a temp file and ``os.replace``d into place — the
same atomicity contract as checkpoints — so a reader never observes a
half-written bundle, even when capture races a failover or a second
interrupt.
"""

from __future__ import annotations

import json
import os
import sys
import time
import zipfile
from pathlib import Path

from ...errors import (
    ConfigError,
    DAGError,
    DeviceError,
    FaultInjectionError,
    NumericalHealthError,
    ObservabilityError,
    PlanError,
    ReproError,
    ShapeError,
    TaskTimeoutError,
    TilingError,
    TopologyError,
    WorkerFailoverError,
)
from ..export import provenance_meta
from ..live.bus import LiveEvent, TelemetryBus
from ..live.sinks import LIVE_SCHEMA_VERSION
from .recorder import FlightRecorder

#: Version of the bundle layout (bump on breaking changes).
BUNDLE_SCHEMA_VERSION = 1

#: The classification vocabulary ``classify_error``/``analyze_bundle``
#: emit (plus ``"unknown"`` when nothing matches).
FAILURE_CLASSES = (
    "worker_death",
    "hang",
    "numerical",
    "timeout",
    "config",
    "injected-fault",
    "interrupted",
)

#: Exception classes that read as configuration/usage mistakes rather
#: than runtime infrastructure or numerics.  CheckpointError lives in
#: repro.runtime.checkpoint and is matched by name to keep this package
#: import-cycle-free with the runtimes.
_CONFIG_ERRORS = (
    ShapeError,
    TilingError,
    DAGError,
    PlanError,
    ConfigError,
    TopologyError,
    DeviceError,
)


def error_chain(exc: BaseException | None) -> list[BaseException]:
    """``exc`` plus its ``__cause__``/``__context__`` chain, outermost first."""
    chain: list[BaseException] = []
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        chain.append(exc)
        seen.add(id(exc))
        exc = exc.__cause__ if exc.__cause__ is not None else exc.__context__
    return chain


def classify_error(exc: BaseException | None) -> str:
    """Failure class for an exception (walking its cause chain).

    Returns one of :data:`FAILURE_CLASSES` or ``"unknown"``.  A
    ``RetryExhaustedError`` classifies as whatever exhausted it — the
    chained last failure — not as a class of its own.
    """
    chain = error_chain(exc)

    def has(*types) -> bool:
        return any(isinstance(e, types) for e in chain)

    if not chain:
        return "unknown"
    if has(KeyboardInterrupt):
        return "interrupted"
    if has(WorkerFailoverError):
        return "worker_death"
    if has(NumericalHealthError):
        return "numerical"
    if has(TaskTimeoutError):
        return "timeout"
    if has(FaultInjectionError):
        return "injected-fault"
    if has(*_CONFIG_ERRORS) or any(
        type(e).__name__ == "CheckpointError" for e in chain
    ):
        return "config"
    return "unknown"


def _jsonable(value):
    """Best-effort JSON projection for plan notes and friends."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        try:
            return _jsonable(to_dict())
        except Exception:
            pass
    return str(value)


def _plan_payload(plan) -> dict:
    """Serializable view of a distribution plan + its decision audit."""
    payload: dict = {}
    describe = getattr(plan, "describe", None)
    if callable(describe):
        try:
            payload["describe"] = describe()
        except Exception:
            pass
    notes = getattr(plan, "notes", None)
    if isinstance(notes, dict):
        payload["notes"] = _jsonable(notes)
    for name in ("main_device", "num_devices", "tile_size"):
        if hasattr(plan, name):
            payload[name] = _jsonable(getattr(plan, name))
    participants = getattr(plan, "participants", None)
    if participants is not None:
        payload["participants"] = _jsonable(list(participants))
    return payload


def _events_jsonl(events: list[LiveEvent], meta: dict | None) -> str:
    header = {
        "type": "live.meta",
        "schema": LIVE_SCHEMA_VERSION,
        **provenance_meta(**(meta or {})),
    }
    lines = [json.dumps(header, separators=(",", ":"))]
    lines.extend(
        json.dumps(ev.to_dict(), separators=(",", ":")) for ev in events
    )
    return "\n".join(lines) + "\n"


def write_failure_bundle(
    path,
    *,
    error: BaseException | None = None,
    classification: str | None = None,
    recorder: FlightRecorder | None = None,
    metrics=None,
    plan=None,
    fault_plan=None,
    checkpoint_path=None,
    tracker=None,
    meta: dict | None = None,
) -> Path:
    """Atomically write a failure bundle; returns the final path.

    Parameters
    ----------
    error:
        The terminal exception (its type, message, and cause chain land
        in the manifest; ``classification`` overrides the derived class).
    recorder:
        The run's :class:`FlightRecorder` — supplies the event tail, the
        in-flight task table, and the per-device fold.
    metrics / plan / fault_plan / tracker:
        Optional :class:`MetricsRegistry`, distribution plan (with its
        ``DecisionAudit`` in ``notes``), chaos :class:`FaultPlan`, and
        :class:`ProgressTracker` to embed.
    checkpoint_path:
        Path of the run's latest checkpoint, embedded as a pointer (plus
        snapshot metadata when the file exists) so a postmortem can say
        where to resume from.
    meta:
        Run parameters (runtime name, grid, tree, backend, seed, ...)
        recorded under ``manifest["run"]``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    tail = recorder.tail() if recorder is not None else []
    inflight = recorder.inflight() if recorder is not None else []
    devices = recorder.device_progress() if recorder is not None else {}

    chain = error_chain(error)
    manifest = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "created_unix": time.time(),
        "provenance": provenance_meta(),
        "run": _jsonable(meta or {}),
        "failure_class": classification or classify_error(error),
        "error": {
            "type": type(error).__name__ if error is not None else None,
            "message": str(error) if error is not None else None,
            "chain": [
                {"type": type(e).__name__, "message": str(e)} for e in chain
            ],
        },
        "events": len(tail),
        "events_seen": recorder.events_seen if recorder is not None else 0,
        "inflight": len(inflight),
        "fault_plan_active": fault_plan is not None,
    }
    if checkpoint_path is not None:
        from ...runtime.checkpoint import checkpoint_info

        manifest["checkpoint"] = checkpoint_info(checkpoint_path)

    members: dict[str, str] = {
        "manifest.json": json.dumps(manifest, indent=1),
        "events.jsonl": _events_jsonl(tail, meta),
        "inflight.json": json.dumps(inflight, indent=1),
        "metrics.json": json.dumps(
            _jsonable(metrics.snapshot()) if metrics is not None else {}, indent=1
        ),
    }
    progress: dict = {"devices": devices}
    if tracker is not None:
        try:
            progress["snapshot"] = _jsonable(tracker.snapshot().to_dict())
        except Exception:
            pass
    members["progress.json"] = json.dumps(_jsonable(progress), indent=1)
    if plan is not None:
        members["plan.json"] = json.dumps(_plan_payload(plan), indent=1)
    if fault_plan is not None:
        members["fault_plan.json"] = json.dumps(fault_plan.to_dict(), indent=1)

    # Atomic publish: assemble in a sibling temp file, then rename over
    # the target — a reader (or a second capture racing this one) only
    # ever sees a complete zip.
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with zipfile.ZipFile(tmp, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            for name, text in members.items():
                zf.writestr(name, text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write never leaves droppings
            tmp.unlink()
    return path


class FailureBundle:
    """Parsed view of a failure bundle (see :func:`write_failure_bundle`)."""

    def __init__(
        self,
        path: Path,
        manifest: dict,
        events: list[LiveEvent],
        inflight: list[dict],
        metrics: dict,
        progress: dict,
        plan: dict | None,
        fault_plan=None,
    ):
        self.path = path
        self.manifest = manifest
        self.events = events
        self.inflight = inflight
        self.metrics = metrics
        self.progress = progress
        self.plan = plan
        self.fault_plan = fault_plan

    @classmethod
    def load(cls, path) -> "FailureBundle":
        """Read and validate a bundle; :class:`ObservabilityError` on junk."""
        p = Path(path)
        if not p.is_file():
            raise ObservabilityError(f"no failure bundle at {p}")
        try:
            with zipfile.ZipFile(p) as zf:
                names = set(zf.namelist())
                if "manifest.json" not in names:
                    raise ObservabilityError(
                        f"{p} is not a failure bundle (no manifest.json)"
                    )

                def member(name: str, default=None):
                    if name not in names:
                        return default
                    return json.loads(zf.read(name).decode())

                manifest = member("manifest.json")
                schema = manifest.get("schema") if isinstance(manifest, dict) else None
                if schema != BUNDLE_SCHEMA_VERSION:
                    raise ObservabilityError(
                        f"{p}: bundle schema {schema!r} not supported "
                        f"(expected {BUNDLE_SCHEMA_VERSION})"
                    )
                events: list[LiveEvent] = []
                if "events.jsonl" in names:
                    for line in zf.read("events.jsonl").decode().splitlines():
                        line = line.strip()
                        if not line:
                            continue
                        doc = json.loads(line)
                        if doc.get("type") == "live.meta":
                            continue
                        events.append(LiveEvent.from_dict(doc))
                fault_plan = None
                fp = member("fault_plan.json")
                if fp is not None:
                    from ...resilience.faults import FaultPlan

                    fault_plan = FaultPlan.from_dict(fp)
                return cls(
                    path=p,
                    manifest=manifest,
                    events=events,
                    inflight=member("inflight.json", []) or [],
                    metrics=member("metrics.json", {}) or {},
                    progress=member("progress.json", {}) or {},
                    plan=member("plan.json"),
                    fault_plan=fault_plan,
                )
        except ObservabilityError:
            raise
        except (zipfile.BadZipFile, json.JSONDecodeError, KeyError, ValueError, OSError) as exc:
            raise ObservabilityError(f"unreadable failure bundle {p}: {exc}") from exc


class BundleCapture:
    """Arms flight-recorder + bundle capture around one factorize call.

    The runtimes construct one when ``bundle_out`` is set: it attaches a
    :class:`FlightRecorder` to the run's bus (creating a private bus
    when the caller runs without one, so task events exist to record),
    and :meth:`capture` writes the bundle when a terminal error escapes.
    Capture is best-effort by design — a failing bundle write must never
    mask the original error — and idempotent: the first capture wins.
    """

    #: Terminal errors worth a bundle.  Programming errors propagate
    #: uncaptured: a bundle full of AttributeError evidence helps nobody
    #: and the traceback is already the better artifact.
    def __init__(
        self,
        path,
        *,
        bus: TelemetryBus | None = None,
        metrics=None,
        plan=None,
        fault_plan=None,
        checkpoint_path=None,
        tracker=None,
        meta: dict | None = None,
        capacity: int = 0,
    ):
        from .recorder import DEFAULT_RECORDER_CAPACITY

        self.path = Path(path)
        self.own_bus = bus is None
        self.bus = bus if bus is not None else TelemetryBus()
        self.recorder = FlightRecorder(
            capacity if capacity > 0 else DEFAULT_RECORDER_CAPACITY
        ).attach(self.bus)
        self.metrics = metrics
        self.plan = plan
        self.fault_plan = fault_plan
        self.checkpoint_path = checkpoint_path
        self.tracker = tracker
        self.meta = dict(meta or {})
        self.written: Path | None = None

    def wants(self, exc: BaseException) -> bool:
        return isinstance(exc, (ReproError, KeyboardInterrupt))

    def capture(self, exc: BaseException) -> Path | None:
        """Write the bundle for ``exc``; returns the path or ``None``."""
        if self.written is not None:
            return self.written
        if not self.wants(exc):
            return None
        try:
            self.bus.drain(timeout=2.0)
            self.written = write_failure_bundle(
                self.path,
                error=exc,
                recorder=self.recorder,
                metrics=self.metrics,
                plan=self.plan,
                fault_plan=self.fault_plan,
                checkpoint_path=self.checkpoint_path,
                tracker=self.tracker,
                meta=self.meta,
            )
            return self.written
        except Exception as write_exc:  # never mask the original failure
            print(
                f"failed to write failure bundle {self.path}: {write_exc}",
                file=sys.stderr,
            )
            return None

    def close(self) -> None:
        """Detach the recorder (and stop a privately created bus)."""
        self.recorder.detach()
        if self.own_bus:
            self.bus.close()
