"""Number-of-devices optimization (paper Alg. 3, Eqs. 10-11).

More devices buy update parallelism but cost broadcast bandwidth; the
paper predicts both terms for the *first iteration* (the trend of later
iterations is proportional) and picks the prefix of the update-speed-
ordered device list minimizing ``T(p) = Top(p) + Tcomm(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.topology import Topology
from ..config import ELEMENT_SIZE_BYTES
from ..dag.tasks import Step
from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..observability.decisions import (
    STAGE_DEVICE_COUNT,
    Candidate,
    DecisionAudit,
    DecisionRecord,
    device_step_inputs,
    margin_over_runner_up,
)
from .distribution import guide_for_participants


@dataclass(frozen=True)
class PredictedTime:
    """One row of the paper's Table III prediction.

    Attributes
    ----------
    num_devices:
        ``p`` — how many devices (from the head of the ordered list).
    t_op:
        Eq. 10's parallel-operation term, seconds.
    t_comm:
        Eq. 11's communication term, seconds.
    """

    num_devices: int
    t_op: float
    t_comm: float

    @property
    def total(self) -> float:
        return self.t_op + self.t_comm


def order_by_update_speed(system: SystemSpec, main_device: str, tile_size: int) -> list[str]:
    """Alg. 3 lines 6-7: descending update speed, main device first."""
    ids = sorted(
        (d.device_id for d in system),
        key=lambda i: -system.device(i).update_throughput(tile_size),
    )
    ids.remove(main_device)
    return [main_device, *ids]


def _first_iteration_tile_shares(
    system: SystemSpec,
    ordered: list[str],
    p: int,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    main_updates: str = "residual",
) -> tuple[dict[str, int], list[str]]:
    """``#tile(i)``: update tiles each of the first ``p`` devices gets.

    Uses the same guide-array distribution the real run will use: the
    columns ``1..N-1`` of the first iteration go to devices cyclically,
    and each column carries ``M`` tiles to update.
    """
    chosen = ordered[:p]
    _ratio, guide = guide_for_participants(
        system, chosen, ordered[0], grid_rows, grid_cols, tile_size,
        main_updates=main_updates,
    )
    shares = {d: 0 for d in chosen}
    for j in range(1, grid_cols):
        shares[guide[j % len(guide)]] += grid_rows
    return shares, guide


def predicted_times(
    system: SystemSpec,
    main_device: str,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    topology: Topology,
    element_size: int = ELEMENT_SIZE_BYTES,
    main_updates: str = "residual",
    horizon: str = "total",
) -> list[PredictedTime]:
    """Evaluate ``Top(p) + Tcomm(p)`` for every prefix size ``p``.

    Follows Alg. 3: devices ordered by update speed with the main device
    at the head; for each ``p`` the operation term is the slowest
    device's workload (Eq. 10) and the communication term sums the
    factor broadcasts plus the next-panel column transfer (Eq. 11).

    Parameters
    ----------
    horizon:
        ``"first"`` evaluates the paper's literal first-iteration
        formulas; ``"total"`` (default) sums the same per-iteration
        formulas over every panel — the paper argues the first
        iteration's trend carries over, and the summed variant makes the
        prediction's crossovers line up with full executions at small
        sizes, where later (cheaper) iterations dilute the fixed
        per-iteration communication cost.
    """
    if grid_rows < 1 or grid_cols < 1:
        raise PlanError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
    if horizon not in ("first", "total"):
        raise PlanError(f"horizon must be 'first' or 'total', got {horizon!r}")
    ordered = order_by_update_speed(system, main_device, tile_size)
    tile_bytes = tile_size * tile_size * element_size
    panels = range(min(grid_rows, grid_cols)) if horizon == "total" else range(1)
    out: list[PredictedTime] = []
    for p in range(1, len(ordered) + 1):
        shares0, guide = _first_iteration_tile_shares(
            system, ordered, p, grid_rows, grid_cols, tile_size, main_updates
        )
        total_share0 = sum(shares0.values()) or 1
        frac = {i: shares0[i] / total_share0 for i in ordered[:p]}
        t_op_sum = 0.0
        t_comm_sum = 0.0
        for k in panels:
            m_k = grid_rows - k
            n_k = grid_cols - k
            pool = m_k * max(n_k - 1, 0)
            # --- Eq. 10: parallel operation time -------------------------
            t_op = 0.0
            for i in ordered[:p]:
                dev = system.device(i)
                if horizon == "first":
                    # Paper-literal Eq. 10: every distributed tile is
                    # charged one UT plus one UE.
                    upd = frac[i] * pool * dev.effective_update_time(tile_size)
                    panel = m_k * (
                        dev.time(Step.T, tile_size) + dev.time(Step.E, tile_size)
                    )
                else:
                    # Exact step counts: an owned column takes one UT and
                    # M_k - 1 UEs, spread over the device's slots.
                    per_col = (
                        dev.time(Step.UT, tile_size)
                        + (m_k - 1) * dev.time(Step.UE, tile_size)
                    ) / dev.slots
                    upd = frac[i] * max(n_k - 1, 0) * per_col
                    panel = dev.panel_chain_time(m_k, tile_size)
                if i == main_device:
                    t_op = max(t_op, panel + upd)
                else:
                    t_op = max(t_op, upd)
            # --- Eq. 11: communication time ------------------------------
            t_comm = 0.0
            for i in ordered[:p]:
                # Factor broadcasts: M T^2 after triangulation + 2 M T^2
                # after elimination, as two messages.
                t_comm += topology.transfer_time(
                    main_device, i, 3 * m_k * tile_bytes, messages=2
                )
            if n_k > 1 and p > 1:
                # Next-panel column comes back from its owner j to the main.
                j_owner = guide[(k + 1) % len(guide)]
                t_comm += topology.transfer_time(
                    j_owner, main_device, max(m_k - 1, 0) * tile_bytes, messages=1
                )
            t_op_sum += t_op
            t_comm_sum += t_comm
        out.append(PredictedTime(num_devices=p, t_op=t_op_sum, t_comm=t_comm_sum))
    return out


def select_num_devices(
    system: SystemSpec,
    main_device: str,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    topology: Topology,
    element_size: int = ELEMENT_SIZE_BYTES,
    main_updates: str = "residual",
    horizon: str = "total",
    audit: DecisionAudit | None = None,
) -> tuple[int, list[PredictedTime]]:
    """Alg. 3: the ``p`` minimizing ``Top + Tcomm``, plus the full table.

    Pass a :class:`~repro.observability.decisions.DecisionAudit` to
    record every prefix size's Eq. 10-11 prediction and the margin the
    chosen ``p`` won by.
    """
    table = predicted_times(
        system, main_device, grid_rows, grid_cols, tile_size, topology,
        element_size, main_updates, horizon,
    )
    best = min(table, key=lambda r: r.total)
    if audit is not None:
        ordered = order_by_update_speed(system, main_device, tile_size)
        margin = margin_over_runner_up(
            [r.total for r in table], best.total, minimize=True
        )
        audit.record(
            DecisionRecord(
                stage=STAGE_DEVICE_COUNT,
                chosen=f"p={best.num_devices}",
                metric="predicted_total_seconds",
                margin=margin,
                inputs={
                    "kernel_seconds": device_step_inputs(system, tile_size),
                    "grid": [grid_rows, grid_cols],
                    "tile_size": tile_size,
                    "ordered_by_update_speed": ordered,
                },
                candidates=[
                    Candidate(
                        name=f"p={r.num_devices}",
                        chosen=r.num_devices == best.num_devices,
                        metrics={
                            "devices": ordered[: r.num_devices],
                            "t_op": r.t_op,
                            "t_comm": r.t_comm,
                            "total": r.total,
                        },
                    )
                    for r in table
                ],
                notes={"horizon": horizon, "main_updates": main_updates},
            )
        )
    return best.num_devices, table
