"""Per-device kernel-backend selection from measured profiles.

The backend registry (:mod:`repro.kernels.backends`) can hold several
implementations of the tile kernels; which one is fastest depends on the
device and the tile size (a jitted backend wins on small tiles where
call overhead dominates, the cache-blocked NumPy variant on wide
panels).  This stage closes that loop the same way the scheduling
policies do: it reads *measured* per-``(device, kind, tile size,
backend)`` timings from a :class:`~repro.observability.profile.
ProfileStore` and picks, per participant device, the backend with the
smallest summed mean per-call seconds over the kernel kinds every
candidate was measured on (see :meth:`ProfileStore.backend_ranking`).

Devices with no measured backend timings fall back to the ``reference``
backend — an explicit, audited fallback, never a silent one.  The
decision lands in the plan's :class:`~repro.observability.decisions.
DecisionAudit` under :data:`~repro.observability.decisions.
STAGE_BACKEND`, so ``tiledqr plan --explain`` shows which timings made
the choice.
"""

from __future__ import annotations

from ..kernels.backends import DEFAULT_BACKEND, available_backends
from ..observability.decisions import (
    STAGE_BACKEND,
    Candidate,
    DecisionRecord,
    margin_over_runner_up,
)


def select_kernel_backends(
    participants,
    tile_size: int,
    profile=None,
    audit=None,
) -> dict[str, str]:
    """Pick the fastest measured kernel backend for each participant.

    Parameters
    ----------
    participants:
        Device ids (the plan's participants; first entry is treated as
        the primary device for the audit's margin figure).
    tile_size:
        Tile edge the plan executes at; timings are filtered to it.
    profile:
        Optional :class:`~repro.observability.profile.ProfileStore` of
        measured timings.  ``None`` (or a store with no backend-tagged
        measurements for a device) selects ``reference`` for that
        device, with the fallback noted in the audit.
    audit:
        Optional :class:`~repro.observability.decisions.DecisionAudit`;
        when given, one :data:`STAGE_BACKEND` record is always appended
        — fallbacks are audited decisions too.

    Returns
    -------
    dict mapping each device id to a registered backend name.
    """
    registered = set(available_backends())
    choices: dict[str, str] = {}
    cands: list[Candidate] = []
    notes: dict = {}
    inputs: dict = {}
    margin = 0.0
    margin_set = False
    for dev in participants:
        ranking: list[tuple[str, float]] = []
        if profile is not None:
            ranking = [
                (be, score)
                for be, score in profile.backend_ranking(
                    device=dev, tile_size=tile_size
                )
                if be in registered
            ]
        if not ranking:
            choices[dev] = DEFAULT_BACKEND
            notes[dev] = "no measured backend timings; reference fallback"
            cands.append(Candidate(name=f"{dev}:{DEFAULT_BACKEND}", chosen=True))
            continue
        best, best_score = ranking[0]
        choices[dev] = best
        inputs[dev] = {be: score for be, score in ranking}
        notes[dev] = f"fastest of {len(ranking)} measured backend(s)"
        if not margin_set and len(ranking) > 1:
            margin = margin_over_runner_up(
                [s for _, s in ranking], best_score, minimize=True
            )
            margin_set = True
        for be, score in ranking:
            cands.append(
                Candidate(
                    name=f"{dev}:{be}",
                    chosen=be == best,
                    metrics={"sum_mean_seconds": score},
                )
            )
    if audit is not None:
        audit.record(
            DecisionRecord(
                stage=STAGE_BACKEND,
                chosen=", ".join(f"{d}={b}" for d, b in choices.items()),
                metric="sum_mean_seconds",
                margin=margin,
                inputs=inputs,
                candidates=cands,
                notes=notes,
            )
        )
    return choices
