"""High-level facade: plan, simulate, and numerically execute tiled QR.

:class:`TiledQR` is the library's main entry point for the paper's
workflow: give it a system and a matrix size and it plans the
distribution (Sec. IV), predicts time (Alg. 3), simulates execution
(task-level for small grids, iteration-level for large ones), and — when
handed actual matrix data — runs the real NumPy kernels under the same
plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.topology import Topology, pcie_star
from ..config import DEFAULT_TILE_SIZE, ELEMENT_SIZE_BYTES
from ..dag import build_dag
from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..runtime.factorization import TiledQRFactorization
from ..runtime.serial import SerialRuntime
from ..sim.engine import simulate_task_level
from ..sim.iteration import simulate_iteration_level
from ..sim.trace import SimulationReport
from .optimizer import Optimizer
from .plan import DistributionPlan

#: Largest tile grid the task-level simulator is used for by default;
#: beyond this the iteration-level model takes over (see repro.sim).
TASK_LEVEL_GRID_LIMIT = 72


@dataclass
class TiledQRRun:
    """Outcome of a planned (and possibly executed) tiled QR."""

    plan: DistributionPlan
    report: SimulationReport
    factorization: TiledQRFactorization | None = None

    @property
    def simulated_seconds(self) -> float:
        return self.report.makespan


class TiledQR:
    """Plan + simulate + execute tiled QR on a heterogeneous system.

    Parameters
    ----------
    system:
        Device models (e.g. :func:`repro.devices.paper_testbed`).
    topology:
        Link models; defaults to the paper's PCIe star.
    elimination:
        Default within-panel elimination tree — any registered name or
        alias from :mod:`repro.dag.trees` (``"TS"``/``"flat"`` is the
        paper's order).  ``factorize(tree=...)`` overrides per call,
        with ``"auto"`` delegating to the optimizer's simulated tree
        selection.
    element_size:
        Bytes per element for the communication model.
    """

    def __init__(
        self,
        system: SystemSpec,
        topology: Topology | None = None,
        elimination: str = "TS",
        element_size: int = ELEMENT_SIZE_BYTES,
    ):
        self.system = system
        self.topology = topology if topology is not None else pcie_star(system.devices)
        self.elimination = elimination
        self.element_size = element_size
        self.optimizer = Optimizer(system, self.topology, element_size)

    # -- planning ---------------------------------------------------------

    def plan(self, matrix_size: int, tile_size: int = DEFAULT_TILE_SIZE, **overrides) -> DistributionPlan:
        """Optimized plan for an ``n x n`` matrix (see Optimizer.plan)."""
        return self.optimizer.plan(matrix_size=matrix_size, tile_size=tile_size, **overrides)

    # -- simulation ---------------------------------------------------------

    def simulate(
        self,
        matrix_size: int | tuple[int, int],
        tile_size: int = DEFAULT_TILE_SIZE,
        plan: DistributionPlan | None = None,
        fidelity: str = "auto",
        **overrides,
    ) -> TiledQRRun:
        """Predict wall-clock behaviour without touching matrix data.

        Parameters
        ----------
        matrix_size:
            Square edge ``n`` or a rectangular ``(m, n)`` shape with
            ``m >= n`` (tall least-squares panels).
        fidelity:
            ``"task"`` forces the discrete-event simulator, ``"iteration"``
            the panel-level model, ``"auto"`` picks by grid size.
        """
        if isinstance(matrix_size, tuple):
            rows, cols = matrix_size
        else:
            rows = cols = matrix_size
        if rows < 1 or cols < 1:
            raise PlanError(f"matrix size must be >= 1, got {matrix_size}")
        if rows < cols:
            raise PlanError(f"QR requires m >= n, got shape {matrix_size}")
        if plan is not None:
            p = plan
        else:
            grid_rows = -(-rows // tile_size)
            grid_cols = -(-cols // tile_size)
            p = self.optimizer.plan(
                grid_rows=grid_rows, grid_cols=grid_cols,
                tile_size=tile_size, **overrides,
            )
        grid_rows = -(-rows // p.tile_size)
        grid_cols = -(-cols // p.tile_size)
        if fidelity not in ("auto", "task", "iteration"):
            raise PlanError(f"unknown fidelity {fidelity!r}")
        use_task = fidelity == "task" or (
            fidelity == "auto" and max(grid_rows, grid_cols) <= TASK_LEVEL_GRID_LIMIT
        )
        if use_task:
            dag = build_dag(grid_rows, grid_cols, self.elimination)
            trace = simulate_task_level(dag, p, self.system, self.topology, self.element_size)
            report = trace.report(grid=(grid_rows, grid_cols), plan=p.describe())
            report.meta["trace"] = trace
        else:
            report = simulate_iteration_level(
                p, grid_rows, grid_cols, self.system, self.topology, self.element_size
            )
        return TiledQRRun(plan=p, report=report)

    # -- numeric execution -------------------------------------------------

    def factorize(
        self,
        a: np.ndarray,
        tile_size: int = DEFAULT_TILE_SIZE,
        plan: DistributionPlan | None = None,
        simulate: bool = True,
        coexecute: bool = False,
        tracer=None,
        batch_updates: bool = False,
        backend=None,
        tree: str | None = None,
    ) -> TiledQRRun:
        """Numerically factorize ``a`` under an optimized plan.

        The kernels run for real (NumPy); the simulated report describes
        what the same schedule would cost on the modelled hardware.

        Parameters
        ----------
        coexecute:
            Run the numeric kernels *inside* the discrete-event
            simulator — every kernel executes at its simulated
            completion event, so the factorization provably follows the
            reported schedule (small grids only; implies ``simulate``).
        tracer:
            Optional :class:`repro.observability.Tracer` recording the
            real kernel execution; the resulting measured trace is also
            attached to ``run.report.meta["real_trace"]``, alongside the
            simulated ``meta["trace"]`` — the pair :func:`
            repro.observability.diff_traces` consumes.
        batch_updates:
            Execute trailing-matrix updates as coarsened row-panel
            batches (ignored under ``coexecute``, which follows the
            simulator's per-tile schedule).  See ``docs/PERFORMANCE.md``.
        backend:
            Kernel backend for the numeric execution — a registered name
            or :class:`~repro.kernels.backends.KernelBackend` object
            (``None`` = the plan's selected backend for its main device,
            falling back to ``reference``).  See ``docs/KERNELS.md``.
        tree:
            Within-panel elimination tree (see :mod:`repro.dag.trees`):
            a registered name/alias, or ``"auto"`` to let the optimizer
            simulate the candidates against the plan and pick the
            fastest (recorded as the audit's ``elimination_tree``
            stage).  ``None`` keeps the instance's ``elimination``.
        """
        arr = np.asarray(a)
        if arr.ndim != 2:
            raise PlanError(f"expected a 2-D matrix, got ndim={arr.ndim}")
        n = max(arr.shape)
        p = plan if plan is not None else self.plan(n, tile_size)
        elimination = self.elimination
        if tree is not None:
            g_rows = -(-arr.shape[0] // p.tile_size)
            g_cols = -(-arr.shape[1] // p.tile_size)
            audit = p.notes.get("audit") if isinstance(p.notes, dict) else None
            elimination = self.optimizer.select_tree(
                tree, g_rows, g_cols, p.tile_size, p, audit=audit
            )
            if isinstance(p.notes, dict):
                p.notes["tree"] = elimination
        if coexecute:
            from ..dag import build_dag
            from ..sim.engine import DiscreteEventSimulator
            from ..tiles import TiledMatrix

            if arr.shape[0] < arr.shape[1]:
                raise PlanError(f"QR requires m >= n, got shape {arr.shape}")
            tiled = TiledMatrix.from_dense(arr, p.tile_size)
            dag = build_dag(tiled.grid_rows, tiled.grid_cols, elimination)
            sim = DiscreteEventSimulator(self.system, self.topology, self.element_size)
            trace = sim.run(dag, p, tiles=tiled)
            fact = TiledQRFactorization(
                r=tiled, log=trace.numeric_log, shape=arr.shape
            )
            report = trace.report(grid=tiled.grid_shape, plan=p.describe())
            report.meta["trace"] = trace
            return TiledQRRun(plan=p, report=report, factorization=fact)
        if backend is None:
            selected = p.notes.get("backends") if isinstance(p.notes, dict) else None
            if isinstance(selected, dict):
                backend = selected.get(p.main_device)
        fact = SerialRuntime(
            elimination, tracer=tracer, batch_updates=batch_updates,
            backend=backend,
        ).factorize(arr, p.tile_size)
        if simulate:
            run = self.simulate(n, p.tile_size, plan=p)
            report = run.report
        else:
            report = SimulationReport(makespan=0.0, compute_busy={}, comm_time=0.0)
        if tracer is not None and tracer.enabled:
            report.meta["real_trace"] = tracer.to_trace()
        return TiledQRRun(plan=p, report=report, factorization=fact)
