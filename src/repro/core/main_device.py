"""Main computing device selection (paper Alg. 2).

The main device runs the low-parallelism critical path: one
triangulation plus a sequential elimination chain per panel.  A device
qualifies as a *candidate* when it can finish that panel work before the
remaining devices finish the panel's update work — otherwise the
updaters would sit idle waiting for factors.  Among candidates the
paper picks the device with the *minimum* update speed: fast updaters
are worth more doing updates (this is why the GTX580, not the faster
GTX680, is chosen on the paper's testbed).
"""

from __future__ import annotations

from ..dag.tasks import Step
from ..devices.model import DeviceSpec
from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..observability.decisions import (
    STAGE_MAIN_DEVICE,
    Candidate,
    DecisionAudit,
    DecisionRecord,
    device_step_inputs,
    margin_over_runner_up,
)


def _others_pool_time(
    system: SystemSpec, exclude: str, num_tiles: float, tile_size: int, steps: tuple[Step, ...]
) -> float:
    """Time for all devices except ``exclude`` to chew through
    ``num_tiles`` tiles, each costing the sum of ``steps``."""
    rate = 0.0
    for d in system:
        if d.device_id == exclude:
            continue
        per_tile = sum(d.time(s, tile_size) for s in steps) / d.slots
        rate += 1.0 / per_tile
    if rate == 0.0:
        return float("inf")
    return num_tiles / rate


def can_finish_t_before_ue(
    device: DeviceSpec, system: SystemSpec, grid_rows: int, grid_cols: int, tile_size: int
) -> bool:
    """Alg. 2 line 3: device finishes the panel's triangulation before
    the other devices finish the panel's elimination updates."""
    ue_tiles = max(grid_rows - 1, 0) * max(grid_cols - 1, 0)
    t_time = device.time(Step.T, tile_size)
    return t_time <= _others_pool_time(
        system, device.device_id, ue_tiles, tile_size, (Step.UE,)
    )


def can_finish_e_before_ut(
    device: DeviceSpec, system: SystemSpec, grid_rows: int, grid_cols: int, tile_size: int
) -> bool:
    """Alg. 2 line 4: device finishes the panel's elimination chain
    before the other devices finish the panel's full update pool."""
    chain = (grid_rows - 1) * device.time(Step.E, tile_size)
    pool = max(grid_rows - 1, 0) * max(grid_cols - 1, 0) + max(grid_cols - 1, 0)
    return chain <= _others_pool_time(
        system, device.device_id, pool, tile_size, (Step.UT, Step.UE)
    )


def main_device_candidates(
    system: SystemSpec, grid_rows: int, grid_cols: int, tile_size: int
) -> list[DeviceSpec]:
    """Devices passing both of Alg. 2's feasibility checks, in system order."""
    if grid_rows < 1 or grid_cols < 1:
        raise PlanError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
    out = []
    for d in system:
        if can_finish_t_before_ue(d, system, grid_rows, grid_cols, tile_size) and (
            can_finish_e_before_ut(d, system, grid_rows, grid_cols, tile_size)
        ):
            out.append(d)
    return out


def select_main_device(
    system: SystemSpec,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    audit: DecisionAudit | None = None,
) -> str:
    """Pick the main computing device (paper Alg. 2).

    Returns the candidate with the minimum update throughput; if no
    device passes the feasibility checks (tiny grids, or a system of
    one), falls back to the device with the fastest panel chain.  Pass a
    :class:`~repro.observability.decisions.DecisionAudit` to record the
    candidates, their feasibility-check outcomes, and the margin.
    """
    if len(system) == 1:
        only = system.devices[0].device_id
        if audit is not None:
            audit.record(
                DecisionRecord(
                    stage=STAGE_MAIN_DEVICE,
                    chosen=only,
                    metric="only_device",
                    inputs={"kernel_seconds": device_step_inputs(system, tile_size)},
                    candidates=[Candidate(name=only, chosen=True)],
                    notes={"reason": "single-device system"},
                )
            )
        return only
    candidates = main_device_candidates(system, grid_rows, grid_cols, tile_size)
    feasible_ids = {d.device_id for d in candidates}
    if candidates:
        best = min(candidates, key=lambda d: d.update_throughput(tile_size))
        chosen_id = best.device_id
        metric = "update_throughput"
        scores = [d.update_throughput(tile_size) for d in candidates]
        margin = margin_over_runner_up(
            scores, best.update_throughput(tile_size), minimize=True
        )
        reason = "minimum update throughput among feasible candidates"
    else:
        best = min(
            system, key=lambda d: d.panel_chain_time(max(grid_rows, 1), tile_size)
        )
        chosen_id = best.device_id
        metric = "panel_chain_time"
        scores = [d.panel_chain_time(max(grid_rows, 1), tile_size) for d in system]
        margin = margin_over_runner_up(
            scores, best.panel_chain_time(max(grid_rows, 1), tile_size), minimize=True
        )
        reason = "no feasible candidate; fastest panel chain fallback"
    if audit is not None:
        rows = []
        for d in system:
            rows.append(
                Candidate(
                    name=d.device_id,
                    feasible=d.device_id in feasible_ids,
                    chosen=d.device_id == chosen_id,
                    metrics={
                        "update_throughput": d.update_throughput(tile_size),
                        "panel_chain_time": d.panel_chain_time(
                            max(grid_rows, 1), tile_size
                        ),
                        "t_before_ue": can_finish_t_before_ue(
                            d, system, grid_rows, grid_cols, tile_size
                        ),
                        "e_before_ut": can_finish_e_before_ut(
                            d, system, grid_rows, grid_cols, tile_size
                        ),
                    },
                )
            )
        audit.record(
            DecisionRecord(
                stage=STAGE_MAIN_DEVICE,
                chosen=chosen_id,
                metric=metric,
                margin=margin,
                inputs={
                    "kernel_seconds": device_step_inputs(system, tile_size),
                    "grid": [grid_rows, grid_cols],
                    "tile_size": tile_size,
                },
                candidates=rows,
                notes={"reason": reason},
            )
        )
    return chosen_id
