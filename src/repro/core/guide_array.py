"""The distribution guide array (paper Alg. 4).

Devices get tile columns in proportion to how many tiles each can update
per unit time.  The proportions are reduced to a small integer ratio and
unrolled into a cyclic array by repeatedly emitting the device with the
largest remaining ratio budget — the paper's example: throughputs
``8 : 12 : 4`` reduce to ``2 : 3 : 1`` and unroll to ``{1, 0, 1, 0, 1, 2}``.
"""

from __future__ import annotations

import math

from ..errors import PlanError


def integer_ratio(
    throughputs: list[float],
    max_error: float = 0.05,
    max_sum: int = 64,
) -> list[int]:
    """Reduce update throughputs to a small integer ratio.

    Throughputs are expressed relative to the smallest one and scaled by
    the smallest integer multiplier whose rounding error stays below
    ``max_error`` (so ``8 : 12 : 4`` reduces to ``2 : 3 : 1`` and
    ``3 : 4 : 4`` is preferred over the 25%-off ``1 : 1 : 1``), subject
    to the guide array staying short (``sum <= max_sum``).

    Parameters
    ----------
    throughputs:
        Tiles-per-unit-time per device (paper Alg. 4's GET_RATIO input).
    max_error:
        Acceptable worst-case relative rounding error.
    max_sum:
        Upper bound on the guide-array cycle length.

    Returns
    -------
    list[int]
        Positive integers, one per device (every device gets >= 1).
    """
    if not throughputs:
        raise PlanError("need at least one throughput")
    if any(t <= 0 or not math.isfinite(t) for t in throughputs):
        raise PlanError(f"throughputs must be positive and finite, got {throughputs}")
    base = min(throughputs)
    rel = [t / base for t in throughputs]

    def candidate(scale: int) -> tuple[list[int], float]:
        ints = [max(1, round(v * scale)) for v in rel]
        g = math.gcd(*ints)
        ints = [v // g for v in ints]
        err = max(abs(i / ints[rel.index(min(rel))] - v) / v for i, v in zip(ints, rel))
        return ints, err

    best: list[int] | None = None
    best_err = math.inf
    for scale in range(1, 9):
        ints, err = candidate(scale)
        if sum(ints) > max_sum:
            continue
        if err < best_err - 1e-12:
            best, best_err = ints, err
        if err <= max_error:
            break
    if best is None:  # every candidate exceeded max_sum; fall back
        best, _ = candidate(1)
    return best


def build_guide_array(ratio: list[int], device_ids: list[str]) -> list[str]:
    """Unroll an integer ratio into the cyclic guide array (Alg. 4).

    Greedy: at each slot, emit the device with the maximum remaining
    budget (ties broken toward the earlier device in ``device_ids``),
    then decrement it.  This interleaves devices so that faster devices
    appear earlier and more often — e.g. ratio ``[2, 3, 1]`` yields
    ``[d1, d0, d1, d0, d1, d2]``.

    Parameters
    ----------
    ratio:
        Positive integer budget per device.
    device_ids:
        Device identifiers, aligned with ``ratio``.
    """
    if len(ratio) != len(device_ids):
        raise PlanError(f"ratio/id length mismatch: {len(ratio)} vs {len(device_ids)}")
    if not ratio:
        raise PlanError("need at least one device")
    if any(r < 1 for r in ratio):
        raise PlanError(f"ratio values must be >= 1, got {ratio}")
    budget = list(ratio)
    out: list[str] = []
    for _ in range(sum(ratio)):
        best = max(range(len(budget)), key=lambda i: (budget[i], -i))
        out.append(device_ids[best])
        budget[best] -= 1
    return out
