"""Device-memory footprint analysis and out-of-core planning.

The paper's conclusion (Sec. VIII) flags "a lack of memory problem ...
for very large matrix sizes" as future work.  This module closes that
gap at the modelling level:

* :func:`plan_footprint` — bytes resident per device under a plan
  (owned column tiles + the panel/broadcast working set);
* :func:`check_memory` — feasibility against each device's capacity;
* :func:`out_of_core_estimate` — a left-looking super-panel schedule:
  columns are processed in passes narrow enough to fit, and the
  reflector factors of earlier passes are re-streamed from host memory
  for every later pass.  The estimate prices that extra traffic on the
  host link and reports the slowdown versus the in-core run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..comm.topology import Topology
from ..config import ELEMENT_SIZE_BYTES
from ..errors import PlanError
from .plan import DistributionPlan


@dataclass(frozen=True)
class MemoryReport:
    """Per-device residency versus capacity.

    Attributes
    ----------
    per_device_bytes:
        Modelled resident bytes at the start of the factorization (the
        peak for column ownership — panels only shrink).
    capacities:
        ``device -> bytes`` (``None`` = unconstrained).
    """

    per_device_bytes: dict[str, float]
    capacities: dict[str, int | None]

    @property
    def feasible(self) -> bool:
        return all(
            cap is None or self.per_device_bytes[d] <= cap
            for d, cap in self.capacities.items()
        )

    def utilization(self) -> dict[str, float]:
        """Resident bytes / capacity (0 when unconstrained)."""
        out = {}
        for d, cap in self.capacities.items():
            out[d] = 0.0 if not cap else self.per_device_bytes[d] / cap
        return out

    def tightest_device(self) -> str | None:
        util = self.utilization()
        if not util:
            return None
        dev = max(util, key=util.get)
        return dev if util[dev] > 0 else None


def plan_footprint(
    plan: DistributionPlan,
    grid_rows: int,
    grid_cols: int,
    element_size: int = ELEMENT_SIZE_BYTES,
) -> dict[str, float]:
    """Bytes resident per device under ``plan``.

    Each device holds the tiles of its owned columns for all rows, plus
    a factor working set: the main device buffers the current panel
    column and its outgoing V/T factors (≈ 3 panel columns' worth); the
    others buffer one incoming broadcast (3·M tiles).
    """
    if grid_rows < 1 or grid_cols < 1:
        raise PlanError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
    tile_bytes = plan.tile_size * plan.tile_size * element_size
    out: dict[str, float] = {}
    for d in plan.participants:
        cols = len(plan.columns_of(d, grid_cols))
        resident = cols * grid_rows * tile_bytes
        working = 3 * grid_rows * tile_bytes  # factor/broadcast buffers
        if d == plan.main_device:
            working += grid_rows * tile_bytes  # staged panel column
        out[d] = float(resident + working)
    return out


def check_memory(
    plan: DistributionPlan,
    grid_rows: int,
    grid_cols: int,
    element_size: int = ELEMENT_SIZE_BYTES,
) -> MemoryReport:
    """Footprint against the plan's device capacities."""
    usage = plan_footprint(plan, grid_rows, grid_cols, element_size)
    caps = {
        d: plan.system.device(d).memory_bytes for d in plan.participants
    }
    return MemoryReport(per_device_bytes=usage, capacities=caps)


@dataclass(frozen=True)
class OutOfCoreEstimate:
    """Result of the super-panel out-of-core schedule.

    Attributes
    ----------
    passes:
        Number of column super-panels (1 = fits in core).
    in_core_makespan:
        The unconstrained simulated time.
    makespan:
        In-core time plus the re-streaming traffic on the host link.
    extra_bytes:
        Total factor bytes re-streamed beyond the in-core run.
    """

    passes: int
    in_core_makespan: float
    makespan: float
    extra_bytes: float
    notes: dict = field(default_factory=dict, compare=False)

    @property
    def overhead(self) -> float:
        """Relative slowdown versus the in-core run."""
        if self.in_core_makespan <= 0:
            return 0.0
        return self.makespan / self.in_core_makespan - 1.0


def out_of_core_estimate(
    plan: DistributionPlan,
    grid_rows: int,
    grid_cols: int,
    in_core_makespan: float,
    topology: Topology,
    element_size: int = ELEMENT_SIZE_BYTES,
) -> OutOfCoreEstimate:
    """Price a left-looking super-panel schedule for ``plan``.

    The column super-panel count ``S`` is the smallest number of passes
    for which every device's share of one pass fits its memory.  Pass
    ``s`` must re-apply the reflectors of all earlier passes, so the
    factors of panel ``k`` (``3·M_k`` tiles, paper Eq. 11 accounting)
    are re-streamed ``S - s(k) - 1`` extra times over the host link.
    """
    report = check_memory(plan, grid_rows, grid_cols, element_size)
    tile_bytes = plan.tile_size * plan.tile_size * element_size

    # Find the per-device pass width that fits; S = passes needed.
    s = 1
    while s <= grid_cols:
        feasible = True
        for d in plan.participants:
            cap = plan.system.device(d).memory_bytes
            if cap is None:
                continue
            share = report.per_device_bytes[d] / s + 3 * grid_rows * tile_bytes
            if share > cap:
                feasible = False
                break
        if feasible:
            break
        s += 1
    if s > grid_cols:
        raise PlanError(
            "matrix cannot be processed even one column at a time on this system"
        )

    if s == 1:
        return OutOfCoreEstimate(
            passes=1,
            in_core_makespan=in_core_makespan,
            makespan=in_core_makespan,
            extra_bytes=0.0,
        )

    # Extra factor traffic: panel k lives in super-panel floor(k/width).
    width = math.ceil(grid_cols / s)
    extra_bytes = 0.0
    for k in range(min(grid_rows, grid_cols)):
        m_k = grid_rows - k
        later_passes = s - (k // width) - 1
        if later_passes > 0:
            extra_bytes += later_passes * 3.0 * m_k * tile_bytes

    # Price it on the host<->main-device link (the streaming channel).
    host = next(
        (d.device_id for d in plan.system.cpus()), plan.main_device
    )
    dst = plan.main_device if plan.main_device != host else (
        next((d for d in plan.participants if d != host), host)
    )
    if host == dst:
        stream_time = 0.0  # single-CPU system streams from its own RAM
    else:
        stream_time = topology.transfer_time(
            host, dst, extra_bytes, messages=max(s - 1, 1)
        )
    return OutOfCoreEstimate(
        passes=s,
        in_core_makespan=in_core_makespan,
        makespan=in_core_makespan + stream_time,
        extra_bytes=extra_bytes,
        notes={"superpanel_width_cols": width},
    )
