"""The paper's contribution: optimized tile distribution for tiled QR.

Three cooperating policies (paper Sec. IV):

1. :mod:`repro.core.main_device` — select the *main computing device*
   that runs the triangulation/elimination critical path (Alg. 2).
2. :mod:`repro.core.device_count` — pick how many devices participate by
   minimizing ``Top(p) + Tcomm(p)`` (Alg. 3, Eqs. 10-11).
3. :mod:`repro.core.guide_array` + :mod:`repro.core.distribution` — build
   the cyclic *distribution guide array* from integer update-throughput
   ratios and map tile columns to devices (Alg. 4, Eq. 12).

:class:`repro.core.optimizer.Optimizer` chains all three into a
:class:`repro.core.plan.DistributionPlan`, which the simulator and the
executor consume.
"""

from .plan import DistributionPlan
from .guide_array import integer_ratio, build_guide_array
from .main_device import select_main_device, main_device_candidates
from .device_count import PredictedTime, predicted_times, select_num_devices
from .distribution import ColumnDistribution
from .optimizer import Optimizer
from .executor import TiledQR

__all__ = [
    "DistributionPlan",
    "integer_ratio",
    "build_guide_array",
    "select_main_device",
    "main_device_candidates",
    "PredictedTime",
    "predicted_times",
    "select_num_devices",
    "ColumnDistribution",
    "Optimizer",
    "TiledQR",
]
