"""Column-to-device distribution bookkeeping (paper Sec. IV-C, Eq. 12).

Wraps a :class:`repro.core.plan.DistributionPlan` with the per-panel
accounting the simulators and Eq. 10 need: which columns (and how many
update tiles) each device handles in iteration ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..observability.decisions import (
    STAGE_DISTRIBUTION,
    Candidate,
    DecisionAudit,
    DecisionRecord,
)
from .guide_array import build_guide_array, integer_ratio
from .plan import DistributionPlan


def _per_tile_update_cost(system: SystemSpec, device_id: str, m: int, tile_size: int) -> float:
    """Achieved seconds per updated tile when a device sweeps whole
    columns: one UT plus ``m - 1`` UEs over ``m`` tiles, spread across
    its slots."""
    from ..dag.tasks import Step

    dev = system.device(device_id)
    col = dev.time(Step.UT, tile_size) + max(m - 1, 0) * dev.time(Step.UE, tile_size)
    return col / (max(m, 1) * dev.slots)


def main_update_share(
    system: SystemSpec,
    participants: list[str] | tuple[str, ...],
    main: str,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
) -> float:
    """Optimal fraction of the update pool the main device should take.

    The paper states the main device "can operate some of the update
    processes if the computation time on the main computing device is a
    lot faster" (Sec. IV-A).  This quantifies that sentence by balancing
    the first iteration: the main device finishes its panel chain plus
    its update share exactly when the other devices finish theirs,

        chain + x * pool * c_main = (1 - x) * pool * c_others,

    solved for ``x`` and clamped to ``[0, 1]``.  ``c_others`` is the
    combined per-tile cost of the non-main participants.
    """
    others = [d for d in participants if d != main]
    if not others:
        return 1.0
    m = grid_rows
    c_main = _per_tile_update_cost(system, main, m, tile_size)
    c_others = 1.0 / sum(
        1.0 / _per_tile_update_cost(system, d, m, tile_size) for d in others
    )
    # Integrate over every panel: the chain shrinks linearly with the
    # remaining rows while the update pool shrinks quadratically, so the
    # whole-run balance differs from the first iteration's.
    pool_total = 0.0
    chain_total = 0.0
    dev_main = system.device(main)
    for k in range(min(grid_rows, grid_cols)):
        m_k = grid_rows - k
        pool_total += m_k * max(grid_cols - k - 1, 0)
        chain_total += dev_main.panel_chain_time(m_k, tile_size)
    if pool_total == 0.0:
        return 0.0
    x = (pool_total * c_others - chain_total) / (pool_total * (c_main + c_others))
    return max(0.0, min(1.0, x))


def guide_for_participants(
    system: SystemSpec,
    participants: list[str] | tuple[str, ...],
    main: str,
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    main_updates: str = "residual",
    audit: DecisionAudit | None = None,
) -> tuple[dict[str, int], list[str]]:
    """Integer ratio and guide array for a participant set (Alg. 4).

    Parameters
    ----------
    main_updates:
        ``"residual"`` (default) scales the main device's throughput by
        its idle fraction (see :func:`main_residual_fraction`) and drops
        it from the guide array when effectively saturated by panel
        work; ``"always"`` uses raw update throughputs for every device
        (the literal Alg. 4 reading).
    audit:
        Optional :class:`~repro.observability.decisions.DecisionAudit`;
        records each participant's throughput, integer weight, and
        guide-array share against its ideal throughput share.

    Returns
    -------
    (ratio_by_device, guide_array)
        ``ratio_by_device`` maps every participant to its integer weight
        (0 when excluded from updates); the guide array cycles over
        devices with positive weight.
    """
    participants = list(participants)
    if main not in participants:
        raise PlanError(f"main device {main!r} not among participants")
    if main_updates not in ("residual", "always"):
        raise PlanError(f"main_updates must be 'residual' or 'always', got {main_updates!r}")
    thr = {d: system.device(d).update_throughput(tile_size) for d in participants}
    raw_thr = dict(thr)
    main_x: float | None = None
    main_dropped = False
    if main_updates == "residual" and len(participants) > 1:
        others = [d for d in participants if d != main]
        x = main_update_share(
            system, participants, main, grid_rows, grid_cols, tile_size
        )
        main_x = x
        other_sum = sum(thr[d] for d in others)
        # Weight main so it receives fraction x of the guide array.
        thr[main] = (x / (1.0 - x)) * other_sum if x < 1.0 else other_sum * 1e6
        others_min = min(thr[d] for d in others)
        if thr[main] < 0.5 * others_min:
            # Main is saturated by panel work; keep it out of the array.
            main_dropped = True
            ratio = integer_ratio([thr[d] for d in others])
            guide = build_guide_array(ratio, others)
            out = dict(zip(others, ratio))
            out[main] = 0
            _audit_distribution(
                audit, participants, main, thr, raw_thr, out, guide,
                main_updates, main_x, main_dropped, tile_size,
            )
            return out, guide
    updaters = participants
    ratio = integer_ratio([thr[d] for d in updaters])
    guide = build_guide_array(ratio, updaters)
    out = dict(zip(updaters, ratio))
    _audit_distribution(
        audit, participants, main, thr, raw_thr, out, guide,
        main_updates, main_x, main_dropped, tile_size,
    )
    return out, guide


def _audit_distribution(
    audit: DecisionAudit | None,
    participants: list[str],
    main: str,
    weighted_thr: dict[str, float],
    raw_thr: dict[str, float],
    ratio: dict[str, int],
    guide: list[str],
    main_updates: str,
    main_x: float | None,
    main_dropped: bool,
    tile_size: int,
) -> None:
    """Record the Alg. 4 distribution outcome into an audit (if any).

    The recorded margin is the worst relative error between a device's
    achieved guide-array share and its ideal (weighted-throughput)
    share — how far the integer approximation of Eq. 12 strays.
    """
    if audit is None:
        return
    total_w = sum(weighted_thr.values()) or 1.0
    total_g = len(guide) or 1
    worst = 0.0
    rows = []
    for d in participants:
        ideal = weighted_thr[d] / total_w
        achieved = guide.count(d) / total_g
        err = abs(achieved - ideal) / ideal if ideal > 0 else 0.0
        worst = max(worst, err)
        rows.append(
            Candidate(
                name=d,
                feasible=ratio.get(d, 0) > 0,
                chosen=ratio.get(d, 0) > 0,
                metrics={
                    "update_throughput": raw_thr[d],
                    "weight": ratio.get(d, 0),
                    "guide_share": achieved,
                    "ideal_share": ideal,
                },
            )
        )
    notes = {"main_updates": main_updates, "main_in_guide": not main_dropped}
    if main_x is not None:
        notes["main_update_share"] = main_x
    audit.record(
        DecisionRecord(
            stage=STAGE_DISTRIBUTION,
            chosen="[" + ", ".join(guide) + "]",
            metric="guide_share_error",
            margin=worst,
            inputs={
                "update_throughput": raw_thr,
                "tile_size": tile_size,
                "main_device": main,
            },
            candidates=rows,
            notes=notes,
        )
    )


@dataclass(frozen=True)
class ColumnDistribution:
    """Materialized ownership over a concrete ``p x q`` tile grid.

    Attributes
    ----------
    plan:
        The distribution plan being applied.
    grid_rows, grid_cols:
        Tile-grid shape.
    """

    plan: DistributionPlan
    grid_rows: int
    grid_cols: int

    def __post_init__(self):
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise PlanError(
                f"grid must be at least 1x1, got {self.grid_rows}x{self.grid_cols}"
            )

    @property
    def owners(self) -> list[str]:
        """Owner of every tile column."""
        return self.plan.owners(self.grid_cols)

    def columns_of(self, device_id: str, start_col: int = 0) -> list[int]:
        """Columns >= ``start_col`` owned by ``device_id``."""
        return self.plan.columns_of(device_id, self.grid_cols, start_col)

    def update_columns(self, device_id: str, k: int) -> list[int]:
        """Columns device updates in panel ``k`` (strictly right of it)."""
        return self.plan.columns_of(device_id, self.grid_cols, k + 1)

    def update_tiles(self, device_id: str, k: int) -> int:
        """``#tile(i)`` for panel ``k``: owned right-of-panel columns
        times the panel height (each column has one UT row and M-1 UE
        rows — the paper charges every tile one UT + one UE)."""
        m = self.grid_rows - k
        return len(self.update_columns(device_id, k)) * m

    def tiles_per_device(self) -> dict[str, int]:
        """Total update tiles per device over the whole factorization."""
        out = {d: 0 for d in self.plan.participants}
        for k in range(min(self.grid_rows, self.grid_cols)):
            for d in self.plan.participants:
                out[d] += self.update_tiles(d, k)
        return out

    def load_balance_summary(self, tile_size: int | None = None) -> dict[str, float]:
        """Per-device share of total update *time* (uses device models).

        A perfectly balanced plan gives every device an equal value; the
        guide array approximates this by weighting column counts with
        throughputs.
        """
        b = tile_size if tile_size is not None else self.plan.tile_size
        total = self.tiles_per_device()
        return {
            d: total[d] * self.plan.system.device(d).effective_update_time(b)
            for d in self.plan.participants
        }
