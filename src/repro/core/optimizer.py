"""End-to-end planning pipeline (paper Sec. IV).

Chains the three policies — main-device selection, device-count
optimization, guide-array distribution — into a
:class:`repro.core.plan.DistributionPlan` for a given system and matrix.
"""

from __future__ import annotations

import logging

from ..comm.topology import Topology, pcie_star
from ..config import DEFAULT_TILE_SIZE, ELEMENT_SIZE_BYTES
from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..observability.decisions import DecisionAudit
from .backend_select import select_kernel_backends
from .device_count import order_by_update_speed, select_num_devices
from .distribution import guide_for_participants
from .main_device import select_main_device
from .plan import DistributionPlan

logger = logging.getLogger("repro.optimizer")


class Optimizer:
    """Builds optimized distribution plans for a heterogeneous system.

    Parameters
    ----------
    system:
        The available devices.
    topology:
        Interconnect; defaults to the paper's PCIe star over ``system``.
    element_size:
        Bytes per matrix element for the Eq. 11 communication model.
    profile:
        Optional :class:`~repro.observability.profile.ProfileStore` of
        measured kernel timings; when it carries backend-tagged
        measurements, :meth:`plan` selects the fastest measured kernel
        backend per participant device (``plan.notes["backends"]``).
    """

    def __init__(
        self,
        system: SystemSpec,
        topology: Topology | None = None,
        element_size: int = ELEMENT_SIZE_BYTES,
        main_updates: str = "residual",
        profile=None,
    ):
        self.system = system
        self.topology = topology if topology is not None else pcie_star(system.devices)
        self.element_size = element_size
        self.main_updates = main_updates
        self.profile = profile

    # -- pipeline stages --------------------------------------------------

    def plan(
        self,
        matrix_size: int | None = None,
        tile_size: int = DEFAULT_TILE_SIZE,
        grid_rows: int | None = None,
        grid_cols: int | None = None,
        main_device: str | None = None,
        num_devices: int | None = None,
        panel_follows_column: bool = False,
        audit: DecisionAudit | None = None,
    ) -> DistributionPlan:
        """Produce the optimized plan for an ``n x n`` matrix.

        Parameters
        ----------
        matrix_size:
            Square matrix edge ``n``; alternatively give ``grid_rows`` /
            ``grid_cols`` directly.
        tile_size:
            Tile edge ``b``.
        main_device:
            Override Alg. 2 (used by the Fig. 9 baselines).
        num_devices:
            Override Alg. 3 (used by the Fig. 6 / Table III sweeps).
        panel_follows_column:
            Build a "no specific main device" plan (Fig. 9's None case).
        audit:
            Decision audit threaded through all three stages; one is
            created when omitted.  Lands in ``plan.notes["audit"]`` —
            render it with
            :func:`repro.observability.decisions.explain_plan`.

        Returns
        -------
        DistributionPlan
            With ``notes["predicted"]`` holding the Alg. 3 table and
            ``notes["audit"]`` the decision audit.
        """
        if grid_rows is None or grid_cols is None:
            if matrix_size is None:
                raise PlanError("give matrix_size or an explicit grid shape")
            if matrix_size < 1:
                raise PlanError(f"matrix size must be >= 1, got {matrix_size}")
            grid_rows = grid_cols = -(-matrix_size // tile_size)

        audit = audit if audit is not None else DecisionAudit()
        main = main_device or select_main_device(
            self.system, grid_rows, grid_cols, tile_size, audit=audit
        )
        if main not in self.system.device_ids:
            raise PlanError(f"unknown main device {main!r}")

        p_opt, table = select_num_devices(
            self.system, main, grid_rows, grid_cols, tile_size,
            self.topology, self.element_size, main_updates=self.main_updates,
            audit=audit,
        )
        p = num_devices if num_devices is not None else p_opt
        if not 1 <= p <= len(self.system):
            raise PlanError(f"num_devices must be in [1, {len(self.system)}], got {p}")

        ordered = order_by_update_speed(self.system, main, tile_size)
        participants = tuple(ordered[:p])
        ratio_map, guide_list = guide_for_participants(
            self.system, participants, main, grid_rows, grid_cols, tile_size,
            main_updates=self.main_updates, audit=audit,
        )
        guide = tuple(guide_list)
        ratio = [ratio_map[d] for d in participants]
        backends = select_kernel_backends(
            participants, tile_size, profile=self.profile, audit=audit
        )
        logger.debug(
            "plan %dx%d b=%d: main=%s (Alg.2%s), p=%d of %d (Alg.3 "
            "optimum %d), ratio=%s guide_len=%d",
            grid_rows, grid_cols, tile_size, main,
            " override" if main_device else "", p, len(self.system), p_opt,
            ratio, len(guide),
        )
        return DistributionPlan(
            system=self.system,
            main_device=main,
            participants=participants,
            guide_array=guide,
            tile_size=tile_size,
            panel_follows_column=panel_follows_column,
            notes={
                "predicted": table,
                "optimal_num_devices": p_opt,
                "ratio": ratio,
                "grid": (grid_rows, grid_cols),
                "audit": audit,
                "backends": backends,
            },
        )
