"""End-to-end planning pipeline (paper Sec. IV).

Chains the three policies — main-device selection, device-count
optimization, guide-array distribution — into a
:class:`repro.core.plan.DistributionPlan` for a given system and matrix.
"""

from __future__ import annotations

import logging

from ..comm.topology import Topology, pcie_star
from ..config import DEFAULT_TILE_SIZE, ELEMENT_SIZE_BYTES
from ..devices.registry import SystemSpec
from ..errors import PlanError
from ..observability.decisions import DecisionAudit
from .backend_select import select_kernel_backends
from .device_count import order_by_update_speed, select_num_devices
from .distribution import guide_for_participants
from .main_device import select_main_device
from .plan import DistributionPlan

logger = logging.getLogger("repro.optimizer")


class Optimizer:
    """Builds optimized distribution plans for a heterogeneous system.

    Parameters
    ----------
    system:
        The available devices.
    topology:
        Interconnect; defaults to the paper's PCIe star over ``system``.
    element_size:
        Bytes per matrix element for the Eq. 11 communication model.
    profile:
        Optional :class:`~repro.observability.profile.ProfileStore` of
        measured kernel timings; when it carries backend-tagged
        measurements, :meth:`plan` selects the fastest measured kernel
        backend per participant device (``plan.notes["backends"]``).
    """

    def __init__(
        self,
        system: SystemSpec,
        topology: Topology | None = None,
        element_size: int = ELEMENT_SIZE_BYTES,
        main_updates: str = "residual",
        profile=None,
    ):
        self.system = system
        self.topology = topology if topology is not None else pcie_star(system.devices)
        self.element_size = element_size
        self.main_updates = main_updates
        self.profile = profile

    # -- pipeline stages --------------------------------------------------

    def plan(
        self,
        matrix_size: int | None = None,
        tile_size: int = DEFAULT_TILE_SIZE,
        grid_rows: int | None = None,
        grid_cols: int | None = None,
        main_device: str | None = None,
        num_devices: int | None = None,
        panel_follows_column: bool = False,
        audit: DecisionAudit | None = None,
        tree: str | None = None,
    ) -> DistributionPlan:
        """Produce the optimized plan for an ``n x n`` matrix.

        Parameters
        ----------
        matrix_size:
            Square matrix edge ``n``; alternatively give ``grid_rows`` /
            ``grid_cols`` directly.
        tile_size:
            Tile edge ``b``.
        main_device:
            Override Alg. 2 (used by the Fig. 9 baselines).
        num_devices:
            Override Alg. 3 (used by the Fig. 6 / Table III sweeps).
        panel_follows_column:
            Build a "no specific main device" plan (Fig. 9's None case).
        audit:
            Decision audit threaded through all three stages; one is
            created when omitted.  Lands in ``plan.notes["audit"]`` —
            render it with
            :func:`repro.observability.decisions.explain_plan`.
        tree:
            Elimination-tree selection (see :mod:`repro.dag.trees`):
            ``"auto"`` simulates every registered tree against this plan
            and picks the fastest; a tree name or alias forces the
            choice (still recording what ``auto`` would have picked).
            ``None`` skips the stage.  The chosen canonical name lands
            in ``plan.notes["tree"]`` and the comparison in the audit's
            ``elimination_tree`` record.

        Returns
        -------
        DistributionPlan
            With ``notes["predicted"]`` holding the Alg. 3 table and
            ``notes["audit"]`` the decision audit.
        """
        if grid_rows is None or grid_cols is None:
            if matrix_size is None:
                raise PlanError("give matrix_size or an explicit grid shape")
            if matrix_size < 1:
                raise PlanError(f"matrix size must be >= 1, got {matrix_size}")
            grid_rows = grid_cols = -(-matrix_size // tile_size)

        audit = audit if audit is not None else DecisionAudit()
        main = main_device or select_main_device(
            self.system, grid_rows, grid_cols, tile_size, audit=audit
        )
        if main not in self.system.device_ids:
            raise PlanError(f"unknown main device {main!r}")

        p_opt, table = select_num_devices(
            self.system, main, grid_rows, grid_cols, tile_size,
            self.topology, self.element_size, main_updates=self.main_updates,
            audit=audit,
        )
        p = num_devices if num_devices is not None else p_opt
        if not 1 <= p <= len(self.system):
            raise PlanError(f"num_devices must be in [1, {len(self.system)}], got {p}")

        ordered = order_by_update_speed(self.system, main, tile_size)
        participants = tuple(ordered[:p])
        ratio_map, guide_list = guide_for_participants(
            self.system, participants, main, grid_rows, grid_cols, tile_size,
            main_updates=self.main_updates, audit=audit,
        )
        guide = tuple(guide_list)
        ratio = [ratio_map[d] for d in participants]
        backends = select_kernel_backends(
            participants, tile_size, profile=self.profile, audit=audit
        )
        logger.debug(
            "plan %dx%d b=%d: main=%s (Alg.2%s), p=%d of %d (Alg.3 "
            "optimum %d), ratio=%s guide_len=%d",
            grid_rows, grid_cols, tile_size, main,
            " override" if main_device else "", p, len(self.system), p_opt,
            ratio, len(guide),
        )
        plan = DistributionPlan(
            system=self.system,
            main_device=main,
            participants=participants,
            guide_array=guide,
            tile_size=tile_size,
            panel_follows_column=panel_follows_column,
            notes={
                "predicted": table,
                "optimal_num_devices": p_opt,
                "ratio": ratio,
                "grid": (grid_rows, grid_cols),
                "audit": audit,
                "backends": backends,
            },
        )
        if tree is not None:
            plan.notes["tree"] = self.select_tree(
                tree, grid_rows, grid_cols, tile_size, plan, audit=audit
            )
        return plan

    def select_tree(
        self,
        tree: str,
        grid_rows: int,
        grid_cols: int,
        tile_size: int,
        plan: DistributionPlan,
        audit: DecisionAudit | None = None,
    ) -> str:
        """Choose the within-panel elimination tree for a planned run.

        Every registered tree (:mod:`repro.dag.trees`) is scored against
        the plan: on grids the task-level simulator handles, by the
        simulated makespan of that tree's DAG on the modelled system;
        on larger grids, by the flop-weighted critical path (the same
        weight model the runtimes' priority schedulers use, fed by this
        optimizer's profile when it has measurements).  ``tree="auto"``
        returns the argmin; an explicit name or alias forces the choice
        but the comparison is still recorded, with what ``auto`` would
        have picked in the record's notes.  The decision lands in the
        audit as an ``elimination_tree`` (STAGE_TREE) record.
        """
        from ..dag import build_dag
        from ..dag.analysis import bottom_level_ranks, task_weight_model
        from ..dag.trees import AUTO, canonical_tree, tree_names
        from ..observability.decisions import (
            STAGE_TREE,
            Candidate,
            DecisionRecord,
            margin_over_runner_up,
        )
        from .executor import TASK_LEVEL_GRID_LIMIT

        forced = None if str(tree).lower() == AUTO else canonical_tree(tree)
        simulate = max(grid_rows, grid_cols) <= TASK_LEVEL_GRID_LIMIT
        weight = task_weight_model(tile_size, profile=self.profile)
        scored: dict[str, float] = {}
        metrics: dict[str, dict] = {}
        for name in tree_names():
            dag = build_dag(grid_rows, grid_cols, name, batch_updates=False)
            cp = max(bottom_level_ranks(dag, weight).values(), default=0.0)
            metrics[name] = {
                "weighted_critical_path": cp,
                "tasks": float(len(dag.tasks)),
            }
            if simulate:
                from ..sim.engine import DiscreteEventSimulator

                # panel_unit=False: the runtimes dispatch panel kernels
                # on the shared worker/slot pool (no dedicated panel
                # engine), and a capacity-1 panel engine would serialize
                # every within-panel merge — making all TT-shaped trees
                # simulate identically regardless of depth.
                sim = DiscreteEventSimulator(
                    self.system, self.topology, self.element_size,
                    panel_unit=False,
                )
                makespan = sim.run(dag, plan).makespan
                metrics[name]["simulated_makespan"] = makespan
                scored[name] = makespan
            else:
                scored[name] = cp
        best = min(scored, key=lambda n: scored[n])  # ties: registration order
        chosen = forced if forced is not None else best
        notes = {
            "mode": "auto" if forced is None else "override",
            "fidelity": "task-sim" if simulate else "critical-path",
        }
        if forced is not None:
            notes["auto_choice"] = best
        rec = DecisionRecord(
            stage=STAGE_TREE,
            chosen=chosen,
            metric="simulated_makespan" if simulate else "weighted_critical_path",
            margin=margin_over_runner_up(list(scored.values()), scored[best]),
            inputs={"grid": f"{grid_rows}x{grid_cols}", "tile_size": tile_size},
            candidates=[
                Candidate(name=n, chosen=(n == chosen), metrics=metrics[n])
                for n in tree_names()
            ],
            notes=notes,
        )
        if audit is not None:
            audit.record(rec)
        logger.debug(
            "tree selection %dx%d b=%d: chose %s (%s, best=%s)",
            grid_rows, grid_cols, tile_size, chosen, notes["fidelity"], best,
        )
        return chosen
