"""JSON (de)serialization of systems and distribution plans.

A plan captures a non-trivial optimization (profile-driven device
selection, counts, guide array); persisting it lets a deployment plan
once and reuse the decision — and lets experiments archive exactly what
was run.  Everything round-trips through plain dicts / JSON strings.
"""

from __future__ import annotations

import json

from ..dag.tasks import Step
from ..devices.model import DeviceKind, DeviceSpec, KernelTimingModel
from ..devices.registry import SystemSpec
from ..errors import PlanError
from .plan import DistributionPlan

_FORMAT_VERSION = 1


def device_to_dict(dev: DeviceSpec) -> dict:
    """Plain-dict form of a device spec (including the timing model)."""
    return {
        "device_id": dev.device_id,
        "name": dev.name,
        "kind": dev.kind.value,
        "cores": dev.cores,
        "slots": dev.slots,
        "memory_bytes": dev.memory_bytes,
        "timing": {
            "overheads_s": {s.value: dev.timing.overheads_s[s] for s in Step},
            "rates_flops": {s.value: dev.timing.rates_flops[s] for s in Step},
        },
    }


def device_from_dict(d: dict) -> DeviceSpec:
    """Inverse of :func:`device_to_dict`."""
    try:
        timing = KernelTimingModel(
            overheads_s={Step(k): float(v) for k, v in d["timing"]["overheads_s"].items()},
            rates_flops={Step(k): float(v) for k, v in d["timing"]["rates_flops"].items()},
        )
        return DeviceSpec(
            device_id=d["device_id"],
            name=d["name"],
            kind=DeviceKind(d["kind"]),
            cores=int(d["cores"]),
            slots=int(d["slots"]),
            timing=timing,
            memory_bytes=d.get("memory_bytes"),
        )
    except (KeyError, ValueError) as exc:
        raise PlanError(f"malformed device dict: {exc}") from exc


def system_to_dict(system: SystemSpec) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "name": system.name,
        "devices": [device_to_dict(d) for d in system.devices],
    }


def system_from_dict(d: dict) -> SystemSpec:
    try:
        return SystemSpec(
            name=d["name"],
            devices=tuple(device_from_dict(x) for x in d["devices"]),
        )
    except KeyError as exc:
        raise PlanError(f"malformed system dict: missing {exc}") from exc


def plan_to_dict(plan: DistributionPlan) -> dict:
    """Plain-dict form of a plan (embeds its system)."""
    return {
        "version": _FORMAT_VERSION,
        "system": system_to_dict(plan.system),
        "main_device": plan.main_device,
        "participants": list(plan.participants),
        "guide_array": list(plan.guide_array),
        "tile_size": plan.tile_size,
        "panel_follows_column": plan.panel_follows_column,
    }


def plan_from_dict(d: dict) -> DistributionPlan:
    """Inverse of :func:`plan_to_dict` (validates like the constructor)."""
    try:
        return DistributionPlan(
            system=system_from_dict(d["system"]),
            main_device=d["main_device"],
            participants=tuple(d["participants"]),
            guide_array=tuple(d["guide_array"]),
            tile_size=int(d["tile_size"]),
            panel_follows_column=bool(d.get("panel_follows_column", False)),
            notes={"restored": True},
        )
    except KeyError as exc:
        raise PlanError(f"malformed plan dict: missing {exc}") from exc


def plan_to_json(plan: DistributionPlan, indent: int | None = 2) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str) -> DistributionPlan:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanError(f"invalid plan JSON: {exc}") from exc
    return plan_from_dict(data)
