"""The distribution plan: who owns which tile columns and who runs panels.

The plan is the single artifact every downstream consumer shares — the
discrete-event simulator, the iteration simulator, and the numeric
executor all take a :class:`DistributionPlan` and honour the same
column-ownership and panel-ownership rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import validate_tile_size
from ..devices.registry import SystemSpec
from ..errors import PlanError


@dataclass(frozen=True)
class DistributionPlan:
    """Tile-column ownership for one tiled QR run.

    Attributes
    ----------
    system:
        The full system the plan was made for (participants may be a
        subset — the paper's number-of-devices optimization).
    main_device:
        Device id that executes triangulations and eliminations.  For
        the "no specific main" baseline of Fig. 9 set
        ``panel_follows_column=True``: each panel then runs on the owner
        of its column.
    participants:
        Ordered device ids taking part (main first, then by descending
        update speed — the paper's list order).
    guide_array:
        Cyclic device-id array from Alg. 4; column ``j`` (``j >= 1``)
        belongs to ``guide_array[j % len]`` (Eq. 12).  Column 0 belongs
        to the main device (its only operations are T and E).
    tile_size:
        Tile edge the plan assumes.
    panel_follows_column:
        If True, panel k's T/E run on ``column_owner(k)`` instead of the
        main device (the Fig. 9 "None" baseline).
    """

    system: SystemSpec
    main_device: str
    participants: tuple[str, ...]
    guide_array: tuple[str, ...]
    tile_size: int
    panel_follows_column: bool = False
    notes: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        validate_tile_size(self.tile_size)
        if not self.participants:
            raise PlanError("plan needs at least one participant")
        known = set(self.system.device_ids)
        for d in (self.main_device, *self.participants, *self.guide_array):
            if d not in known:
                raise PlanError(f"unknown device {d!r} in plan")
        if self.main_device not in self.participants:
            raise PlanError("main device must participate")
        if not self.guide_array:
            raise PlanError("guide array must be non-empty")
        if set(self.guide_array) - set(self.participants):
            raise PlanError("guide array references non-participating devices")
        if len(set(self.participants)) != len(self.participants):
            raise PlanError("duplicate participants")

    # -- ownership --------------------------------------------------------

    def column_owner(self, col: int) -> str:
        """Device owning tile column ``col`` (Eq. 12)."""
        if col < 0:
            raise PlanError(f"negative column {col}")
        if col == 0:
            return self.main_device
        return self.guide_array[col % len(self.guide_array)]

    def panel_owner(self, k: int) -> str:
        """Device that runs panel ``k``'s triangulation/elimination."""
        if self.panel_follows_column:
            return self.column_owner(k)
        return self.main_device

    def owners(self, num_cols: int) -> list[str]:
        """Column owners for a ``num_cols``-wide tile grid."""
        return [self.column_owner(j) for j in range(num_cols)]

    def columns_of(self, device_id: str, num_cols: int, start_col: int = 0) -> list[int]:
        """Columns in ``[start_col, num_cols)`` owned by ``device_id``."""
        return [
            j
            for j in range(start_col, num_cols)
            if self.column_owner(j) == device_id
        ]

    @property
    def num_devices(self) -> int:
        return len(self.participants)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        ga = ", ".join(self.guide_array)
        return (
            f"plan[{self.system.name}]: main={self.main_device}, "
            f"p={self.num_devices} participants={list(self.participants)}, "
            f"guide=[{ga}], b={self.tile_size}"
            + (", panel-follows-column" if self.panel_follows_column else "")
        )
