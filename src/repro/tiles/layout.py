"""The :class:`TiledMatrix` container.

A ``TiledMatrix`` stores a matrix as a ``p x q`` grid of square ``b x b``
NumPy tiles — the data layout every kernel, the DAG executor and the
simulator's transfer accounting operate on.  Tiles are owned,
C-contiguous arrays (a *tiled* layout, as PLASMA uses), not views into
one big array: in the paper each tile lives in some device's memory, and
owning tiles makes per-tile movement explicit.

A second, optional *row-major* storage mode (:meth:`TiledMatrix.
to_row_major`) keeps each tile row in one contiguous ``(b, q*b)`` buffer
with the tiles as column-slice views into it.  Per-tile semantics are
unchanged, but :meth:`TiledMatrix.row_panel` then returns zero-copy
views over column ranges — the layout the batched update kernels
(:mod:`repro.kernels.batched`) fuse their wide GEMMs over.  In the
legacy list-of-tiles layout ``row_panel`` gathers a copy and
:meth:`TiledMatrix.scatter_row_panel` writes it back.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..config import DEFAULT_DTYPE, DEFAULT_TILE_SIZE
from ..errors import ShapeError, TilingError
from .partition import Partition


class TiledMatrix:
    """A matrix held as a grid of square tiles.

    Parameters
    ----------
    tiles:
        ``p x q`` nested list (rows of tiles) of ``b x b`` ndarrays.
    rows, cols:
        Logical (unpadded) matrix shape.

    Notes
    -----
    Use :meth:`from_dense` / :meth:`to_dense` to convert; construct
    directly only when you already hold a valid tile grid.
    """

    def __init__(self, tiles: list[list[np.ndarray]], rows: int, cols: int):
        if not tiles or not tiles[0]:
            raise TilingError("tile grid must be non-empty")
        b = tiles[0][0].shape[0]
        for r, row in enumerate(tiles):
            if len(row) != len(tiles[0]):
                raise TilingError(f"ragged tile grid at row {r}")
            for c, t in enumerate(row):
                if t.shape != (b, b):
                    raise TilingError(
                        f"tile ({r},{c}) has shape {t.shape}, expected ({b},{b})"
                    )
        self._tiles = tiles
        self._b = b
        self._rowbufs: list[np.ndarray] | None = None
        self._row_part = Partition(rows, b)
        self._col_part = Partition(cols, b)
        if self._row_part.num_tiles != len(tiles) or self._col_part.num_tiles != len(tiles[0]):
            raise TilingError(
                f"grid {len(tiles)}x{len(tiles[0])} inconsistent with logical shape "
                f"({rows},{cols}) at tile size {b}"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_size: int = DEFAULT_TILE_SIZE,
        dtype=None,
        storage: str = "tiles",
    ) -> "TiledMatrix":
        """Split a dense matrix into owned ``b x b`` tiles (zero padded).

        ``storage`` selects the tile layout: ``"tiles"`` (default, one
        owned array per tile) or ``"rowmajor"`` (contiguous per-row
        panels; see :meth:`to_row_major`).
        """
        if storage not in ("tiles", "rowmajor"):
            raise TilingError(f"storage must be 'tiles' or 'rowmajor', got {storage!r}")
        a = np.asarray(a, dtype=dtype if dtype is not None else None)
        if a.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
        if a.dtype.kind != "f":
            a = a.astype(DEFAULT_DTYPE)
        rows, cols = a.shape
        rp, cp = Partition(rows, tile_size), Partition(cols, tile_size)
        b = tile_size
        grid: list[list[np.ndarray]] = []
        for i in range(rp.num_tiles):
            r0, r1 = rp.tile_span(i)
            row = []
            for j in range(cp.num_tiles):
                c0, c1 = cp.tile_span(j)
                t = np.zeros((b, b), dtype=a.dtype)
                t[: r1 - r0, : c1 - c0] = a[r0:r1, c0:c1]
                row.append(t)
            grid.append(row)
        out = cls(grid, rows, cols)
        if storage == "rowmajor":
            out.to_row_major()
        return out

    @classmethod
    def zeros(
        cls, rows: int, cols: int, tile_size: int = DEFAULT_TILE_SIZE, dtype=DEFAULT_DTYPE
    ) -> "TiledMatrix":
        """An all-zero tiled matrix of the given logical shape."""
        rp, cp = Partition(rows, tile_size), Partition(cols, tile_size)
        grid = [
            [np.zeros((tile_size, tile_size), dtype=dtype) for _ in range(cp.num_tiles)]
            for _ in range(rp.num_tiles)
        ]
        return cls(grid, rows, cols)

    @classmethod
    def identity(
        cls, n: int, tile_size: int = DEFAULT_TILE_SIZE, dtype=DEFAULT_DTYPE
    ) -> "TiledMatrix":
        """The n-by-n identity in tiled form (padded part stays zero)."""
        out = cls.zeros(n, n, tile_size, dtype)
        for k in range(out.grid_rows):
            np.fill_diagonal(out.tile(k, k), 1.0)
        # Clear any padded diagonal entries beyond the logical extent.
        if not out.row_partition.is_exact:
            last = out.tile(out.grid_rows - 1, out.grid_cols - 1)
            r0, r1 = out.row_partition.tile_span(out.grid_rows - 1)
            for d in range(r1 - r0, tile_size):
                last[d, d] = 0.0
        return out

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        tile_size: int = DEFAULT_TILE_SIZE,
        seed: int | None = None,
        dtype=DEFAULT_DTYPE,
    ) -> "TiledMatrix":
        """Random standard-normal matrix (the paper's random-float input)."""
        rng = np.random.default_rng(seed)
        return cls.from_dense(
            rng.standard_normal((rows, cols)).astype(dtype), tile_size
        )

    # -- basic properties -----------------------------------------------

    @property
    def tile_size(self) -> int:
        return self._b

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (unpadded) matrix shape."""
        return (self._row_part.extent, self._col_part.extent)

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Tile-grid shape ``(p, q)``."""
        return (len(self._tiles), len(self._tiles[0]))

    @property
    def grid_rows(self) -> int:
        return len(self._tiles)

    @property
    def grid_cols(self) -> int:
        return len(self._tiles[0])

    @property
    def dtype(self):
        return self._tiles[0][0].dtype

    @property
    def row_partition(self) -> Partition:
        return self._row_part

    @property
    def col_partition(self) -> Partition:
        return self._col_part

    # -- tile access ----------------------------------------------------

    def tile(self, i: int, j: int) -> np.ndarray:
        """The ``b x b`` tile at grid position ``(i, j)``.

        This is a *live view*: the returned array aliases the matrix's
        storage, so in-place mutation (``tile[...] = x``, ``tile -= y``)
        is immediately visible through the matrix — the kernels rely on
        this.  In row-major storage mode the view is a column slice of
        the row's contiguous buffer rather than an owned array.
        """
        if not (0 <= i < self.grid_rows and 0 <= j < self.grid_cols):
            raise TilingError(
                f"tile ({i},{j}) out of range for grid {self.grid_shape}"
            )
        return self._tiles[i][j]

    def set_tile(self, i: int, j: int, value: np.ndarray) -> None:
        """Replace tile ``(i, j)`` contents (shape- and dtype-checked).

        The value is copied in; its dtype must equal the matrix dtype —
        silently splicing e.g. a float32 tile into a float64 matrix
        would quietly destroy precision, so mismatches raise
        :class:`~repro.errors.TilingError` (cast explicitly if meant).
        """
        t = self.tile(i, j)
        value = np.asarray(value)
        if value.dtype != t.dtype:
            raise TilingError(
                f"tile value dtype {value.dtype} != matrix dtype {t.dtype}; "
                f"cast explicitly if the narrowing/widening is intended"
            )
        if value.shape != t.shape:
            raise ShapeError(f"tile value shape {value.shape} != {t.shape}")
        t[...] = value

    def iter_tiles(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(i, j, tile)`` in row-major grid order."""
        for i, row in enumerate(self._tiles):
            for j, t in enumerate(row):
                yield i, j, t

    def column_tiles(self, j: int) -> list[np.ndarray]:
        """All tiles of tile column ``j``, top to bottom."""
        if not 0 <= j < self.grid_cols:
            raise TilingError(f"tile column {j} out of range")
        return [row[j] for row in self._tiles]

    # -- row panels (batched-update storage) ----------------------------

    @property
    def is_row_major(self) -> bool:
        """True when tile rows live in contiguous per-row buffers."""
        return self._rowbufs is not None

    def to_row_major(self) -> "TiledMatrix":
        """Convert storage in place to contiguous per-row panels.

        After conversion each tile row ``i`` occupies one C-contiguous
        ``(b, q*b)`` buffer and ``tile(i, j)`` returns a view into it,
        so :meth:`row_panel` is zero-copy.  Idempotent; returns ``self``
        for chaining.  Previously handed-out tile arrays stop aliasing
        the matrix — convert before taking tile references.
        """
        if self._rowbufs is None:
            b, q = self._b, self.grid_cols
            bufs: list[np.ndarray] = []
            for i, row in enumerate(self._tiles):
                buf = np.empty((b, q * b), dtype=self.dtype)
                views = []
                for j, t in enumerate(row):
                    buf[:, j * b : (j + 1) * b] = t
                    views.append(buf[:, j * b : (j + 1) * b])
                self._tiles[i] = views
                bufs.append(buf)
            self._rowbufs = bufs
        return self

    def _check_panel_range(self, i: int, j0: int, j1: int) -> None:
        if not 0 <= i < self.grid_rows:
            raise TilingError(f"tile row {i} out of range for grid {self.grid_shape}")
        if not (0 <= j0 < j1 <= self.grid_cols):
            raise TilingError(
                f"column range [{j0}, {j1}) invalid for grid {self.grid_shape}"
            )

    def row_panel(self, i: int, j0: int, j1: int) -> np.ndarray:
        """Tiles ``(i, j0) ... (i, j1-1)`` as one ``(b, (j1-j0)*b)`` panel.

        In row-major storage this is a zero-copy view — mutations are
        immediately visible through the matrix and
        :meth:`scatter_row_panel` is a no-op.  In the legacy
        list-of-tiles layout the panel is a gathered *copy*; call
        :meth:`scatter_row_panel` to write updates back.
        """
        self._check_panel_range(i, j0, j1)
        b = self._b
        if self._rowbufs is not None:
            return self._rowbufs[i][:, j0 * b : j1 * b]
        if j1 - j0 == 1:
            return self._tiles[i][j0]  # single tile: live view either way
        return np.concatenate(self._tiles[i][j0:j1], axis=1)

    def scatter_row_panel(self, i: int, j0: int, j1: int, panel: np.ndarray) -> None:
        """Write a (possibly gathered) row panel back into tiles.

        Detects the zero-copy case (``panel`` already aliases the
        matrix's storage) and returns without copying, so callers can
        unconditionally pair ``row_panel``/``scatter_row_panel``.
        """
        self._check_panel_range(i, j0, j1)
        b = self._b
        if panel.shape != (b, (j1 - j0) * b):
            raise ShapeError(
                f"panel shape {panel.shape} != ({b}, {(j1 - j0) * b})"
            )
        if self._rowbufs is not None:
            dst = self._rowbufs[i][:, j0 * b : j1 * b]
            if dst is panel or np.shares_memory(dst, panel):
                return
            dst[...] = panel
            return
        if j1 - j0 == 1 and panel is self._tiles[i][j0]:
            return
        for j in range(j0, j1):
            self._tiles[i][j][...] = panel[:, (j - j0) * b : (j - j0 + 1) * b]

    # -- conversion -----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Reassemble the logical (unpadded) dense matrix."""
        rows, cols = self.shape
        out = np.empty((rows, cols), dtype=self.dtype)
        for i, j, t in self.iter_tiles():
            r0, r1 = self._row_part.tile_span(i)
            c0, c1 = self._col_part.tile_span(j)
            out[r0:r1, c0:c1] = t[: r1 - r0, : c1 - c0]
        return out

    def copy(self) -> "TiledMatrix":
        """Deep copy (each tile copied; storage mode preserved)."""
        grid = [[t.copy() for t in row] for row in self._tiles]
        out = TiledMatrix(grid, *self.shape)
        if self.is_row_major:
            out.to_row_major()
        return out

    def transpose(self) -> "TiledMatrix":
        """The transposed matrix, still in tiled form.

        Grid positions swap and each tile is transposed; padding is
        preserved (zero tails move from rows to columns).
        """
        rows, cols = self.shape
        grid = [
            [self._tiles[i][j].T.copy() for i in range(self.grid_rows)]
            for j in range(self.grid_cols)
        ]
        return TiledMatrix(grid, cols, rows)

    # -- misc -----------------------------------------------------------

    def tile_bytes(self, element_size: int | None = None) -> int:
        """Bytes in one tile (the unit of every modelled transfer)."""
        if element_size is None:
            element_size = self.dtype.itemsize
        return self._b * self._b * element_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TiledMatrix(shape={self.shape}, grid={self.grid_shape}, "
            f"b={self._b}, dtype={self.dtype})"
        )
