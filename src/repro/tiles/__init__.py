"""Tiled matrix layout: splitting matrices into square tiles and back."""

from .partition import Partition, partition_extent
from .layout import TiledMatrix

__all__ = ["Partition", "partition_extent", "TiledMatrix"]
