"""Partition arithmetic for tile grids.

The paper uses square tiles over square matrices whose size is a multiple
of the tile size; this module generalizes slightly (ragged last tile via
zero padding) so the library is usable on arbitrary sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import validate_tile_size
from ..errors import TilingError


@dataclass(frozen=True)
class Partition:
    """How one matrix dimension of length ``extent`` splits into tiles.

    Attributes
    ----------
    extent:
        The dimension length being partitioned.
    tile_size:
        Tile edge length ``b``.
    """

    extent: int
    tile_size: int

    def __post_init__(self):
        validate_tile_size(self.tile_size)
        if self.extent < 1:
            raise TilingError(f"extent must be >= 1, got {self.extent}")

    @property
    def num_tiles(self) -> int:
        """Number of tiles covering the dimension (last may be padded)."""
        return -(-self.extent // self.tile_size)

    @property
    def padded_extent(self) -> int:
        """Dimension length after zero padding to a whole tile count."""
        return self.num_tiles * self.tile_size

    @property
    def is_exact(self) -> bool:
        """True when the tile size divides the extent evenly."""
        return self.extent % self.tile_size == 0

    def tile_span(self, index: int) -> tuple[int, int]:
        """Half-open element range ``[start, stop)`` of tile ``index``
        within the *unpadded* dimension."""
        if not 0 <= index < self.num_tiles:
            raise TilingError(f"tile index {index} out of range [0, {self.num_tiles})")
        start = index * self.tile_size
        return start, min(start + self.tile_size, self.extent)


def partition_extent(extent: int, tile_size: int) -> Partition:
    """Convenience constructor mirroring :class:`Partition`."""
    return Partition(extent=extent, tile_size=tile_size)
