"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tile has an incompatible shape."""


class TilingError(ReproError, ValueError):
    """A matrix cannot be tiled as requested (bad tile size, etc.)."""


class KernelError(ReproError):
    """A numerical tile kernel was invoked on invalid inputs."""


class DAGError(ReproError):
    """The task DAG is malformed (cycle, missing dependency, bad task)."""


class DeviceError(ReproError, ValueError):
    """A device specification or lookup is invalid."""


class TopologyError(ReproError, ValueError):
    """A communication topology query is invalid (unknown endpoint, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PlanError(ReproError, ValueError):
    """A distribution plan is invalid or inconsistent with the DAG."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class ObservabilityError(ReproError):
    """Tracing/metrics misuse (mis-nested spans, malformed trace files)."""


class ResilienceError(ReproError):
    """Base class for fault-tolerance failures (retry, failover, health)."""


class FaultInjectionError(ResilienceError):
    """A synthetic kernel failure injected by the chaos engine.

    Deliberately retryable: the retry layer treats it exactly like a
    real transient kernel exception.
    """


class NumericalHealthError(ResilienceError):
    """A kernel produced non-finite output or an implausible residual.

    Raised by the opt-in NaN/Inf sentinels and the per-panel residual
    probe; routed through the retry layer (the task's inputs are
    restored and the kernel replayed).
    """


class TaskTimeoutError(ResilienceError):
    """A task exceeded its per-task deadline (a hang classified as failure)."""


class RetryExhaustedError(ResilienceError):
    """A task kept failing after every attempt the retry policy allows."""


class WorkerFailoverError(ResilienceError):
    """Device failover could not proceed (no survivors, lost state, ...)."""
