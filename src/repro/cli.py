"""Command-line interface: ``python -m repro`` / ``tiledqr``.

Subcommands:

* ``experiment <id>`` — regenerate any paper table/figure
  (``table1 fig3 fig4 fig5 fig6 fig8 fig9 fig10 table3`` plus the
  ablations).
* ``plan <n>`` — print the optimized distribution plan for an n x n
  matrix on the paper testbed.
* ``factorize <n>`` — run a real numeric tiled QR and report the
  residual plus the simulated heterogeneous-system time;
  ``--checkpoint-every/--checkpoint-out`` snapshot mid-run and
  ``--resume`` finishes an interrupted run.
* ``chaos <n> --plan PLAN.json`` — run a factorization under a
  deterministic fault-injection plan (kernel exceptions, hangs, worker
  kills, tile corruption) and print the resilience report: faults
  injected, retries, failovers, overhead vs a clean run.
* ``trace <n|file.jsonl>`` — record a traced real run (or summarize a
  saved JSONL trace): per-kernel time share, critical path, worker
  utilization; ``--diff`` reports per-kernel sim-vs-real prediction
  error, ``--chrome`` exports Chrome Trace Event JSON, ``--profile-out``
  feeds a kernel profile store, ``--perf-out`` appends a perf
  trajectory point.
* ``top <n>`` — run a live factorization with the in-run telemetry
  pipeline on and render a refreshing dashboard: per-device progress,
  EWMA kernel durations, critical-path ETA, straggler flags
  (``--once`` prints a single final snapshot; ``--stream-out`` streams
  the event bus to JSONL for ``watch --attach``).
* ``watch --attach run.jsonl`` — follow a streamed live-telemetry file
  (written by ``top --stream-out``, possibly by another process,
  mid-run) and render the same dashboard from it.
* ``metrics --from-trace run.jsonl`` — rebuild a metrics registry from
  a saved trace and print it in Prometheus text exposition format.
* ``perf`` — compare the newest ``BENCH_*.json`` points against their
  trajectory baselines (``--check`` gates CI).
* ``backends`` — list the registered kernel backends; ``--check`` runs
  the cross-backend conformance harness (every backend vs the reference
  oracle) and exits nonzero on any mismatch.
* ``postmortem BUNDLE.zip`` — root-cause a failure bundle (written by
  ``--bundle-out`` on ``factorize``/``chaos``/``top`` when a run dies):
  classification, responsible FaultSpec when chaos seeded it, causal
  timeline, stranded tasks, where to resume from.
* ``list`` — list available experiments.

Exit codes (documented in ``docs/API.md``): ``0`` success, ``2``
configuration/usage, ``4`` numerical-health failure, ``5``
infrastructure failure (worker death, hang, timeout, injected fault),
``130`` interrupted, ``1`` any other failure.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

#: CLI exit codes, one per failure class so scripts and CI can branch on
#: *why* a run died without parsing stderr.  2 follows the argparse
#: usage-error convention, 130 the shell's SIGINT convention; 4 and 5
#: split "the math went bad" from "the machinery went bad".
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_CONFIG = 2
EXIT_NUMERICAL = 4
EXIT_INFRASTRUCTURE = 5
EXIT_INTERRUPTED = 130

#: Failure class (see ``repro.observability.postmortem.classify_error``)
#: -> process exit code.
_CLASS_EXIT = {
    "numerical": EXIT_NUMERICAL,
    "worker_death": EXIT_INFRASTRUCTURE,
    "hang": EXIT_INFRASTRUCTURE,
    "timeout": EXIT_INFRASTRUCTURE,
    "injected-fault": EXIT_INFRASTRUCTURE,
    "config": EXIT_CONFIG,
    "interrupted": EXIT_INTERRUPTED,
}


def exit_code_for(exc: BaseException) -> int:
    """Exit code for a terminal error, per its failure classification."""
    from .observability.postmortem import classify_error

    return _CLASS_EXIT.get(classify_error(exc), EXIT_FAILURE)


def _bundle_hint(path) -> None:
    from pathlib import Path

    if path and Path(path).is_file():
        print(
            f"failure bundle written to {path} "
            f"(inspect with `tiledqr postmortem {path}`)",
            file=sys.stderr,
        )


def _cmd_list(_args) -> int:
    from .experiments import ALL_EXPERIMENTS

    print("available experiments:")
    for name, mod in ALL_EXPERIMENTS.items():
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} {doc}")
    return 0


def _cmd_experiment(args) -> int:
    import json
    from pathlib import Path

    from .experiments import ALL_EXPERIMENTS

    if args.id == "all":
        names = list(ALL_EXPERIMENTS)
    elif args.id in ALL_EXPERIMENTS:
        names = [args.id]
    else:
        print(f"unknown experiment {args.id!r}; try 'list'", file=sys.stderr)
        return 2
    collected = []
    for name in names:
        result = ALL_EXPERIMENTS[name].run(quick=args.quick)
        print(result.to_text())
        print()
        collected.append(
            {
                "name": result.name,
                "title": result.title,
                "headers": result.headers,
                "rows": [[_jsonable(v) for v in row] for row in result.rows],
                "paper_expectation": result.paper_expectation,
                "observations": result.observations,
            }
        )
    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(collected, indent=1))
        print(f"results written to {path}")
    return 0


def _jsonable(v):
    import numpy as np

    if isinstance(v, (np.integer,)):
        return int(v)
    if isinstance(v, (np.floating,)):
        return float(v)
    return v if isinstance(v, (int, float, str, bool, type(None))) else str(v)


def _cmd_plan(args) -> int:
    from .core.optimizer import Optimizer
    from .devices.registry import paper_testbed
    from .errors import ObservabilityError
    from .observability import DecisionAudit, explain_plan

    system = paper_testbed()
    if args.profile:
        from .observability import ProfileStore

        try:
            store = ProfileStore.load(args.profile)
            system = store.to_system(base=system)
        except ObservabilityError as exc:
            print(f"cannot use profile store {args.profile}: {exc}", file=sys.stderr)
            return 2
        print(f"using measured kernel times from {args.profile} "
              f"({store.num_runs} run(s), devices {store.devices()}, "
              f"backends {store.backends()})")
        opt = Optimizer(system, profile=store)
    else:
        opt = Optimizer(system)
    audit = DecisionAudit()
    plan = opt.plan(
        matrix_size=args.n, tile_size=args.tile_size, audit=audit, tree=args.tree
    )
    print(system.describe(args.tile_size))
    print()
    print(plan.describe())
    print(f"elimination tree: {plan.notes['tree']} (--tree {args.tree})")
    print(f"Alg. 3 prediction (p*, per-p Top+Tcomm):")
    for row in plan.notes["predicted"]:
        marker = " <-- selected" if row.num_devices == plan.num_devices else ""
        print(
            f"  p={row.num_devices}: Top={row.t_op*1e3:.3f} ms "
            f"Tcomm={row.t_comm*1e3:.3f} ms total={row.total*1e3:.3f} ms{marker}"
        )
    if args.explain:
        print()
        print(explain_plan(plan))
    return 0


def _cmd_backends(args) -> int:
    """List registered kernel backends; --check runs the conformance harness."""
    import json
    from pathlib import Path

    from .kernels.backends import DEFAULT_BACKEND, backend_info

    if args.check:
        from .kernels.backends.conformance import run_conformance

        report = run_conformance()
        print(report.to_text())
        if args.json:
            Path(args.json).write_text(report.to_json())
            print(f"conformance report written to {args.json}")
        return 0 if report.passed else 1
    info = backend_info()
    if args.json:
        Path(args.json).write_text(json.dumps(info, indent=1))
        print(f"backend listing written to {args.json}")
        return 0
    print("registered kernel backends:")
    for b in info:
        flags = [f for f, on in (
            ("default", b["default"]),
            ("compiled", b["compiled"]),
            ("bit-exact", b["bit_exact"]),
        ) if on]
        tag = f"  [{', '.join(flags)}]" if flags else ""
        print(f"  {b['name']:12s} {b['description']}{tag}")
    print(
        "\nselect with `--backend NAME` on factorize/trace; verify with "
        "`tiledqr backends --check`"
    )
    return 0


def _resolve_backend_arg(name):
    """Fail fast (exit code 2) on an unknown --backend name."""
    from .errors import KernelError
    from .kernels.backends import resolve_backend

    try:
        resolve_backend(name)
    except KernelError as exc:
        print(str(exc), file=sys.stderr)
        return False
    return True


#: ``--tree`` vocabulary: auto-selection, canonical names, seed aliases.
def _tree_choices():
    from .dag.trees import ALIASES, AUTO, tree_names

    return [AUTO, *tree_names(), *ALIASES]


def _resolve_tree_cli(tree, n: int, tile_size: int) -> str:
    """Canonical tree for a ``--tree`` value (``None`` -> seed default).

    ``auto`` delegates to the optimizer's simulated tree selection on
    the paper testbed at the run's grid size.
    """
    from .dag.trees import AUTO, canonical_tree

    if tree is None:
        return canonical_tree("TS")
    if str(tree).lower() == AUTO:
        from .core.optimizer import Optimizer
        from .devices.registry import paper_testbed

        opt = Optimizer(paper_testbed())
        plan = opt.plan(matrix_size=n, tile_size=tile_size)
        grid = -(-n // tile_size)
        return opt.select_tree(AUTO, grid, grid, tile_size, plan)
    return canonical_tree(tree)


def _cmd_factorize(args) -> int:
    from .core.executor import TiledQR
    from .devices.registry import paper_testbed
    from .utils import frobenius_relative_error

    if args.n > 2048:
        print("numeric factorization is NumPy-bound; use n <= 2048", file=sys.stderr)
        return 2
    if not _resolve_backend_arg(args.backend):
        return 2
    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.n, args.n))

    if args.resume or args.checkpoint_every or args.checkpoint_out or args.bundle_out:
        return _factorize_checkpointed(args, a)

    qr = TiledQR(paper_testbed())
    run = qr.factorize(
        a,
        tile_size=args.tile_size,
        batch_updates=args.batch_updates,
        backend=args.backend,
        tree=args.tree,
    )
    fact = run.factorization
    err = frobenius_relative_error(fact.apply_q(fact.r_dense()), a)
    print(run.plan.describe())
    if args.tree is not None:
        print(f"elimination tree: {run.plan.notes.get('tree')} (--tree {args.tree})")
    print(f"numeric: ||A - QR||/||A|| = {err:.3e}")
    print(f"simulated heterogeneous makespan: {run.report.makespan*1e3:.3f} ms")
    print(f"simulated communication share: {run.report.comm_fraction*100:.1f}%")
    return 0


def _factorize_checkpointed(args, a) -> int:
    """`factorize` with --checkpoint-every/--checkpoint-out/--resume/
    --bundle-out: runs through the resilient runtimes instead of the
    TiledQR executor."""
    from .errors import ReproError
    from .observability import MetricsRegistry
    from .runtime.checkpoint import (
        CheckpointError,
        load_partial_factorization,
        resume_factorization,
    )
    from .runtime.serial import SerialRuntime
    from .runtime.threaded import ThreadedRuntime
    from .utils import frobenius_relative_error

    if (args.checkpoint_every is None) != (args.checkpoint_out is None):
        print(
            "--checkpoint-every and --checkpoint-out must be given together",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    metrics = MetricsRegistry()
    kwargs = dict(
        elimination=_resolve_tree_cli(args.tree, args.n, args.tile_size),
        batch_updates=args.batch_updates,
        metrics=metrics,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_out,
        backend=args.backend,
        bundle_out=args.bundle_out,
    )

    try:
        if args.resume:
            state = load_partial_factorization(args.resume)
            if args.tree is None:
                # No explicit --tree: adopt the snapshot's recorded tree.
                # An explicit --tree that disagrees with the snapshot is
                # a CheckpointError from the runtime's resume validation.
                kwargs["elimination"] = state.elimination
            if state.shape != a.shape:
                print(
                    f"snapshot {args.resume} is for a {state.shape} matrix, "
                    f"not {a.shape}; pass the original n/seed",
                    file=sys.stderr,
                )
                return 2
            ntasks = len(state.completed)
            print(f"resuming from {args.resume} ({ntasks} task(s) already done)")
            if args.runtime == "threaded":
                runtime = ThreadedRuntime(num_workers=args.workers, **kwargs)
            else:
                runtime = SerialRuntime(**kwargs)
            fact = resume_factorization(args.resume, runtime=runtime)
        else:
            if args.runtime == "threaded":
                runtime = ThreadedRuntime(num_workers=args.workers, **kwargs)
            else:
                runtime = SerialRuntime(**kwargs)
            fact = runtime.factorize(a, args.tile_size)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        _bundle_hint(args.bundle_out)
        return EXIT_INTERRUPTED
    except CheckpointError as exc:
        print(f"factorization failed: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except ReproError as exc:
        print(f"factorization failed: {exc}", file=sys.stderr)
        _bundle_hint(args.bundle_out)
        return exit_code_for(exc)
    err = frobenius_relative_error(fact.apply_q(fact.r_dense()), a)
    print(f"numeric ({args.runtime} runtime): ||A - QR||/||A|| = {err:.3e}")
    ckpts = metrics.snapshot()["counters"].get("resilience.checkpoints", 0)
    if args.checkpoint_out and ckpts:
        print(f"checkpoints written: {int(ckpts)} -> {args.checkpoint_out}")
        print(f"resume with: tiledqr factorize {args.n} --seed {args.seed} "
              f"--resume {args.checkpoint_out}")
    return 0


def _cmd_chaos(args) -> int:
    """Run a factorization under a fault plan and report what happened."""
    import json
    from pathlib import Path
    from time import perf_counter

    from .errors import ReproError, ResilienceError
    from .observability import MetricsRegistry, Tracer, write_jsonl
    from .resilience import (
        ChaosEngine,
        FaultPlan,
        ResilienceReport,
        RetryPolicy,
        resilience_counters,
    )
    from .runtime import tiled_qr

    if args.n > 2048:
        print("numeric factorization is NumPy-bound; use n <= 2048", file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.load(args.plan)
    except (ResilienceError, OSError) as exc:
        print(f"cannot load fault plan {args.plan}: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.n, args.n))
    tree = _resolve_tree_cli(args.tree, args.n, args.tile_size)

    t0 = perf_counter()
    clean = tiled_qr(a, args.tile_size, elimination=tree)
    clean_seconds = perf_counter() - t0

    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        backoff=args.backoff,
        deadline=args.deadline,
    )
    # --bundle-out: run with a live bus so the flight recorder inside the
    # runtime's BundleCapture has retries/faults/failovers to record.
    bus = None
    if args.bundle_out:
        from .observability import TelemetryBus

        bus = TelemetryBus()
    t0 = perf_counter()
    try:
        if args.runtime == "multiprocess":
            from .core.optimizer import Optimizer
            from .devices.registry import paper_testbed

            dist = Optimizer(paper_testbed()).plan(
                matrix_size=args.n,
                tile_size=args.tile_size,
                num_devices=args.devices,
            )
            print(f"devices: {', '.join(dist.participants)} (main {dist.main_device})")
            from .runtime.multiprocess import MultiprocessRuntime

            fact = MultiprocessRuntime(
                dist,
                elimination=tree,
                tracer=tracer,
                retry_policy=policy,
                chaos_plan=plan,
                metrics=metrics,
                health_checks=args.health_checks,
                bus=bus,
                bundle_out=args.bundle_out,
            ).factorize(a, args.tile_size)
        else:
            chaos = ChaosEngine(plan, metrics=metrics, tracer=tracer, bus=bus)
            kwargs = dict(
                elimination=tree,
                tracer=tracer,
                retry_policy=policy,
                chaos=chaos,
                metrics=metrics,
                health_checks=args.health_checks,
                bus=bus,
                bundle_out=args.bundle_out,
            )
            if args.runtime == "threaded":
                from .runtime.threaded import ThreadedRuntime

                fact = ThreadedRuntime(num_workers=args.workers, **kwargs).factorize(
                    a, args.tile_size
                )
            else:
                from .runtime.serial import SerialRuntime

                fact = SerialRuntime(**kwargs).factorize(a, args.tile_size)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        _bundle_hint(args.bundle_out)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"factorization did not survive the fault plan: {exc}", file=sys.stderr)
        _bundle_hint(args.bundle_out)
        return exit_code_for(exc)
    finally:
        if bus is not None:
            bus.close()
    wall = perf_counter() - t0

    report = ResilienceReport(
        n=args.n,
        runtime=args.runtime,
        residual=fact.reconstruction_error(a),
        wall_seconds=wall,
        clean_seconds=clean_seconds,
        counters=resilience_counters(metrics),
        events=[
            f"{rec.kind}: {rec.label}" for rec in tracer.annotation_records()
        ],
        identical_to_clean=bool(
            np.array_equal(fact.r_dense(), clean.r_dense())
        ),
    )
    print(report.to_text())
    if args.trace_out:
        path = write_jsonl(tracer.to_trace(), args.trace_out)
        print(f"trace written to {path}")
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_dict(), indent=1))
        print(f"report JSON written to {args.json}")
    return 0


def _build_live_pipeline(args, n: int, tree: str, metrics):
    """(bus, tracker, detector, sink) for a live-telemetry CLI run."""
    from .dag import build_dag
    from .dag.analysis import task_weight_model
    from .observability import (
        JsonlStreamSink,
        ProgressTracker,
        StragglerDetector,
        TelemetryBus,
        predicted_durations,
        provenance_meta,
    )

    grid = -(-n // args.tile_size)
    profile = None
    if getattr(args, "profile", None):
        from .errors import ObservabilityError
        from .observability import ProfileStore

        try:
            profile = ProfileStore.load(args.profile)
        except ObservabilityError as exc:
            print(f"cannot use profile store {args.profile}: {exc}", file=sys.stderr)
            profile = None
    bus = TelemetryBus(heartbeat_interval=args.heartbeat)
    dag = build_dag(grid, grid, tree)
    weight = task_weight_model(args.tile_size, profile=profile)
    tracker = ProgressTracker(dag, weight).attach(bus)
    predicted = (
        predicted_durations(profile, args.tile_size) if profile is not None else None
    )
    detector = StragglerDetector(
        predicted=predicted, factor=args.straggler_factor, metrics=metrics
    ).attach(bus)
    sink = None
    if args.stream_out:
        sink = JsonlStreamSink(
            args.stream_out,
            meta=provenance_meta(
                runtime=args.runtime, n=n, b=args.tile_size,
                elimination=tree, seed=args.seed,
            ),
        ).attach(bus)
    return bus, tracker, detector, sink


def _cmd_top(args) -> int:
    """Live dashboard over a real factorization run."""
    import threading
    from pathlib import Path

    from .errors import ReproError, ResilienceError
    from .observability import MetricsRegistry, render_dashboard
    from .observability.live.dashboard import ANSI_REPAINT
    from .resilience import ChaosEngine, FaultPlan, RetryPolicy

    if args.n > 2048:
        print("numeric factorization is NumPy-bound; use n <= 2048", file=sys.stderr)
        return 2
    if not _resolve_backend_arg(args.backend):
        return 2
    chaos_plan = None
    if args.chaos:
        try:
            chaos_plan = FaultPlan.load(args.chaos)
        except (ResilienceError, OSError) as exc:
            print(f"cannot load fault plan {args.chaos}: {exc}", file=sys.stderr)
            return 2
    tree = _resolve_tree_cli(args.tree, args.n, args.tile_size)
    metrics = MetricsRegistry()
    bus, tracker, detector, sink = _build_live_pipeline(args, args.n, tree, metrics)
    capture = None
    if args.bundle_out:
        from .observability.postmortem import BundleCapture

        # CLI-level capture (not the runtime's bundle_out knob) so the
        # bundle embeds the dashboard's ProgressTracker snapshot too.
        capture = BundleCapture(
            args.bundle_out,
            bus=bus,
            metrics=metrics,
            fault_plan=chaos_plan,
            tracker=tracker,
            meta={
                "runtime": args.runtime, "n": args.n, "b": args.tile_size,
                "elimination": tree, "seed": args.seed,
            },
        )
    policy = None
    if chaos_plan is not None or args.deadline is not None:
        policy = RetryPolicy(max_attempts=3, backoff=0.0, deadline=args.deadline)

    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.n, args.n))
    kwargs = dict(
        elimination=tree, batch_updates=args.batch_updates,
        retry_policy=policy, metrics=metrics, backend=args.backend, bus=bus,
    )
    if args.runtime == "multiprocess":
        from .core.optimizer import Optimizer
        from .devices.registry import paper_testbed
        from .runtime.multiprocess import MultiprocessRuntime

        dist = Optimizer(paper_testbed()).plan(
            matrix_size=args.n, tile_size=args.tile_size, num_devices=args.devices
        )
        runtime = MultiprocessRuntime(dist, chaos_plan=chaos_plan, **kwargs)
    elif args.runtime == "threaded":
        from .runtime.threaded import ThreadedRuntime

        chaos = (
            ChaosEngine(chaos_plan, metrics=metrics, bus=bus)
            if chaos_plan is not None else None
        )
        runtime = ThreadedRuntime(num_workers=args.workers, chaos=chaos, **kwargs)
    else:
        from .runtime.serial import SerialRuntime

        chaos = (
            ChaosEngine(chaos_plan, metrics=metrics, bus=bus)
            if chaos_plan is not None else None
        )
        runtime = SerialRuntime(chaos=chaos, **kwargs)

    outcome: dict = {}

    def run() -> None:
        try:
            outcome["fact"] = runtime.factorize(a, args.tile_size)
        except BaseException as exc:  # surfaced on the main thread
            outcome["error"] = exc

    worker = threading.Thread(target=run, name="tiledqr-top-run", daemon=True)
    worker.start()
    try:
        while not args.once and worker.is_alive():
            frame = render_dashboard(tracker.snapshot())
            sys.stdout.write(ANSI_REPAINT + frame + "\n")
            sys.stdout.flush()
            worker.join(args.refresh)
        worker.join()
        # The runtime only drains the bus on a clean finish; after a
        # failure, flush undelivered events to the sink and recorder
        # before the finally below closes them.
        bus.drain()
        if "error" in outcome and capture is not None:
            capture.capture(outcome["error"])
    except KeyboardInterrupt:
        # Orderly teardown even though the run thread is abandoned: write
        # the interrupted-run bundle (drains the bus), stop the bus
        # dispatcher, and flush the stream sink so every event the bus
        # delivered is on disk.
        print("\ninterrupted; abandoning the in-flight run (daemon thread)")
        if capture is not None:
            capture.capture(KeyboardInterrupt("interrupted by user"))
            _bundle_hint(args.bundle_out)
        bus.close()
        if sink is not None:
            sink.flush()
        return EXIT_INTERRUPTED
    finally:
        if sink is not None:
            sink.close()
        if capture is not None:
            capture.close()
    print(render_dashboard(tracker.snapshot()))
    print()
    print(detector.report())
    if sink is not None:
        print(f"\nlive event stream written to {Path(args.stream_out)} "
              f"({sink.written} event(s))")
    if "error" in outcome:
        exc = outcome["error"]
        bus.close()
        if isinstance(exc, ReproError):
            print(f"factorization failed: {exc}", file=sys.stderr)
            _bundle_hint(args.bundle_out)
            return exit_code_for(exc)
        raise exc
    bus.close()
    return 0


def _cmd_watch(args) -> int:
    """Follow a streamed live-telemetry JSONL file and render the dashboard."""
    import time
    from pathlib import Path

    from .errors import ObservabilityError
    from .observability import ProgressTracker, read_live_events, render_dashboard
    from .observability.live.dashboard import ANSI_REPAINT

    path = Path(args.attach)
    deadline = time.monotonic() + args.wait
    while not path.is_file():
        if time.monotonic() >= deadline:
            print(f"no live stream at {path}", file=sys.stderr)
            return 2
        time.sleep(0.1)
    try:
        while True:
            try:
                meta, events = read_live_events(path)
            except ObservabilityError as exc:
                print(f"cannot read {path}: {exc}", file=sys.stderr)
                return 2
            # Re-fold the whole stream each frame: the file is append-only
            # and a fresh tracker keeps the fold trivially consistent.
            tracker = ProgressTracker()
            for ev in events:
                tracker.feed(ev)
            now = events[-1].t if events else None
            frame = render_dashboard(tracker.snapshot(now=now))
            if args.once:
                print(frame)
                return 0
            sys.stdout.write(ANSI_REPAINT + frame + "\n")
            sys.stdout.flush()
            if tracker.finished:
                return 0
            time.sleep(args.refresh)
    except KeyboardInterrupt:
        print()
        return 130


def _cmd_postmortem(args) -> int:
    """Root-cause a failure bundle: classification, narrative, resume hint."""
    import json

    from .errors import ObservabilityError
    from .observability.postmortem import analyze_bundle

    try:
        report = analyze_bundle(args.bundle)
    except ObservabilityError as exc:
        print(f"cannot analyze {args.bundle}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.to_text())
    return EXIT_OK


def _cmd_metrics(args) -> int:
    """Rebuild a metrics registry from a saved trace; print Prometheus text."""
    from pathlib import Path

    from .errors import ObservabilityError
    from .observability import MetricsRegistry, load_jsonl

    try:
        trace = load_jsonl(Path(args.from_trace))
    except (ObservabilityError, OSError) as exc:
        print(f"cannot load {args.from_trace}: {exc}", file=sys.stderr)
        return 2
    b = trace.meta.get("b") or trace.meta.get("tile_size") or args.tile_size
    registry = MetricsRegistry()
    for rec in trace.tasks:
        registry.observe_kernel(rec.task.kind, int(b), rec.duration, rec.task.ncols)
    for ann in trace.annotations:
        registry.counter(f"trace.annotation.{ann.kind}").inc()
    text = registry.to_prometheus_text(prefix=args.prefix)
    if args.out:
        Path(args.out).write_text(text)
        print(f"prometheus exposition written to {args.out} "
              f"(tile size {int(b)}, {len(trace.tasks)} task record(s))")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_gantt(args) -> int:
    from .comm.topology import pcie_star
    from .core.optimizer import Optimizer
    from .dag import build_dag
    from .devices.registry import paper_testbed
    from .sim.engine import DiscreteEventSimulator
    from .sim.gantt import ascii_gantt, to_chrome_trace

    if args.n > 1600:
        print("gantt uses the task-level simulator; use n <= 1600", file=sys.stderr)
        return 2
    system = paper_testbed()
    topology = pcie_star(system.devices)
    opt = Optimizer(system, topology)
    plan = opt.plan(matrix_size=args.n, tile_size=args.tile_size)
    grid = -(-args.n // plan.tile_size)
    tree = _resolve_tree_cli(args.tree, args.n, args.tile_size)
    dag = build_dag(grid, grid, tree)
    trace = DiscreteEventSimulator(system, topology).run(dag, plan)
    trace.meta["elimination"] = tree
    print(plan.describe())
    print()
    print(ascii_gantt(trace, width=args.width))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(to_chrome_trace(trace))
        print(f"\nChrome trace written to {args.out}")
    return 0


def _write_chrome(trace, path: str) -> None:
    from pathlib import Path

    from .sim.gantt import to_chrome_trace

    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(to_chrome_trace(trace))
    print(f"Chrome trace written to {p} (open in chrome://tracing or Perfetto)")


def _update_profile(
    trace, tile_size: int, path: str, meta: dict | None = None,
    backend: str = "reference",
) -> None:
    from pathlib import Path
    from time import strftime

    from .devices.calibration import paper_cpu_i7_3820
    from .errors import ObservabilityError
    from .observability import ProfileStore

    store = ProfileStore.load(path) if Path(path).is_file() else ProfileStore()
    try:
        rid = store.ingest_trace(
            trace, tile_size, recorded_at=strftime("%Y-%m-%dT%H:%M:%S"), meta=meta,
            backend=backend,
        )
    except ObservabilityError as exc:
        print(f"profile store not updated: {exc}", file=sys.stderr)
        return
    store.save(path)
    print(f"profile store updated: {path} (run {rid}, now {store.num_runs} run(s))")
    print(store.report())
    print(store.drift_report(paper_cpu_i7_3820()))


def _cmd_trace(args) -> int:
    from pathlib import Path

    from .observability import (
        MetricsRegistry,
        Tracer,
        diff_traces,
        expand_batched,
        load_jsonl,
        provenance_meta,
        record_traced_run,
        summarize_trace,
        write_jsonl,
    )

    from .errors import ObservabilityError

    target = args.target
    if Path(target).is_file():
        try:
            trace = load_jsonl(Path(target))
        except ObservabilityError as exc:
            print(f"cannot load {target}: {exc}", file=sys.stderr)
            return 2
        print(f"trace: {target}")
        print(summarize_trace(trace).to_text())
        if args.chrome:
            _write_chrome(trace, args.chrome)
        if args.profile_out:
            _update_profile(trace, args.tile_size, args.profile_out)
        if args.diff is not None:
            if args.diff is True:
                print("--diff with a trace file needs a second file to compare against",
                      file=sys.stderr)
                return 2
            try:
                other = load_jsonl(Path(args.diff))
            except ObservabilityError as exc:
                print(f"cannot load {args.diff}: {exc}", file=sys.stderr)
                return 2
            print()
            print(diff_traces(expand_batched(trace), expand_batched(other)).to_text())
        return 0

    try:
        n = int(target)
    except ValueError:
        print(f"target {target!r} is neither a trace file nor a matrix size",
              file=sys.stderr)
        return 2
    if n > 2048:
        print("numeric factorization is NumPy-bound; use n <= 2048", file=sys.stderr)
        return 2
    if not _resolve_backend_arg(args.backend):
        return 2

    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)
    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((n, n))
    tree = _resolve_tree_cli(args.tree, n, args.tile_size)
    plan = None
    if args.runtime == "serial":
        from .runtime.serial import SerialRuntime

        SerialRuntime(
            elimination=tree, tracer=tracer,
            batch_updates=args.batch_updates, backend=args.backend,
        ).factorize(a, args.tile_size)
    elif args.runtime == "threaded":
        from .runtime.threaded import ThreadedRuntime

        ThreadedRuntime(
            num_workers=args.workers, elimination=tree, tracer=tracer,
            batch_updates=args.batch_updates, backend=args.backend,
        ).factorize(a, args.tile_size)
    else:
        from .core.optimizer import Optimizer
        from .devices.registry import paper_testbed
        from .observability import DecisionAudit
        from .runtime.multiprocess import MultiprocessRuntime

        plan = Optimizer(paper_testbed()).plan(
            matrix_size=n, tile_size=args.tile_size, audit=DecisionAudit()
        )
        MultiprocessRuntime(
            plan, tracer=tracer, batch_updates=args.batch_updates,
            elimination=tree, backend=args.backend,
        ).factorize(a, args.tile_size)
    trace = tracer.to_trace()
    trace.meta["elimination"] = tree
    trace.meta["runtime"] = args.runtime
    print(
        f"traced real run: {args.runtime} runtime, n={n}, b={args.tile_size}, "
        f"tree={tree}"
    )
    print(summarize_trace(trace).to_text())
    rates = metrics.kernel_rates()
    if rates:
        print("achieved GFLOP/s (flops-model rate per call):")
        for kern in sorted(rates):
            s = rates[kern]
            print(
                f"  {kern:6s} mean {s['mean']:8.2f}  p50 {s['p50']:8.2f}  "
                f"p95 {s['p95']:8.2f}  p99 {s['p99']:8.2f}"
            )
    if args.out:
        from .observability.analysis import infer_grid

        meta = provenance_meta(
            runtime=args.runtime,
            n=n,
            b=args.tile_size,
            grid=list(infer_grid(trace)),
            elimination=tree,
            batch_updates=args.batch_updates,
            workers=args.workers if args.runtime == "threaded" else None,
            seed=args.seed,
            backend=args.backend or "reference",
            decisions=(
                plan.notes["audit"].to_dict()["decisions"]
                if plan is not None else None
            ),
            profile_store=args.profile_out,
        )
        path = write_jsonl(trace, args.out, meta=meta)
        print(f"trace written to {path}")
    if args.chrome:
        _write_chrome(trace, args.chrome)
    if args.profile_out:
        _update_profile(
            trace,
            args.tile_size,
            args.profile_out,
            meta={
                "runtime": args.runtime, "n": n, "seed": args.seed,
                "backend": args.backend or "reference",
            },
            backend=args.backend or "reference",
        )
    if args.perf_out:
        path = record_traced_run(
            args.perf_out, args.runtime, n, args.tile_size, trace,
            extra={"batch_updates": args.batch_updates, "tree": tree},
        )
        print(f"perf trajectory appended to {path}")
    if args.diff is not None:
        from .core.executor import TiledQR
        from .devices.registry import paper_testbed

        run = TiledQR(paper_testbed(), elimination=tree).simulate(
            n, args.tile_size, fidelity="task"
        )
        sim_trace = run.report.meta["trace"]
        sim_trace.meta["elimination"] = tree
        print()
        print(f"simulated on {run.plan.describe()}")
        # the simulator predicts the unfused DAG; expand batched records
        # so the task multisets are comparable
        print(diff_traces(expand_batched(trace), sim_trace).to_text())
    return 0


def _cmd_perf(args) -> int:
    from pathlib import Path

    from .errors import ObservabilityError
    from .observability import compare_trajectories

    paths = [Path(p) for p in args.paths] if args.paths else sorted(
        Path.cwd().glob("BENCH_*.json")
    )
    if not paths:
        print("no BENCH_*.json trajectories found", file=sys.stderr)
        return 2 if args.check else 0
    try:
        report = compare_trajectories(paths, threshold=args.threshold)
    except ObservabilityError as exc:
        print(f"perf check failed to read trajectories: {exc}", file=sys.stderr)
        return 2
    print(f"trajectories: {', '.join(str(p) for p in paths)}")
    print(report.to_text())
    if args.check and not report.ok:
        return 1
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import generate_report

    out = generate_report(args.out, quick=not args.full, only=args.only)
    print(f"report written to {out}")
    return 0


def _cmd_selfcheck(_args) -> int:
    from .selfcheck import run_selfcheck

    print("repro self-check:")
    ok = run_selfcheck(verbose=True)
    print("all checks passed" if ok else "SELF-CHECK FAILED", flush=True)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tiledqr",
        description="Tiled QR on a modelled CPU+GPU system (ICPP'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments")
    p_list.set_defaults(func=_cmd_list)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (or 'all')")
    p_exp.add_argument("--quick", action="store_true", help="reduced sweeps")
    p_exp.add_argument("--out", help="write results JSON to this path")
    p_exp.set_defaults(func=_cmd_experiment)

    p_plan = sub.add_parser("plan", help="show the optimized plan for n x n")
    p_plan.add_argument("n", type=int)
    p_plan.add_argument("--tile-size", type=int, default=16)
    p_plan.add_argument(
        "--explain",
        action="store_true",
        help="print the scheduler decision audit: candidates, measured "
        "inputs, per-candidate predictions, margins (Algs. 2-4)",
    )
    p_plan.add_argument(
        "--profile",
        metavar="STORE.json",
        help="plan on measured kernel times from this profile store "
        "(see `tiledqr trace --profile-out`) instead of the static calibration",
    )
    p_plan.add_argument(
        "--tree",
        choices=_tree_choices(),
        default="auto",
        help="within-panel elimination tree; 'auto' simulates every "
        "registered tree against the plan and picks the fastest "
        "(default: auto; see docs/PERFORMANCE.md)",
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_fact = sub.add_parser("factorize", help="numeric tiled QR of a random matrix")
    p_fact.add_argument("n", type=int)
    p_fact.add_argument("--tile-size", type=int, default=16)
    p_fact.add_argument("--seed", type=int, default=0)
    p_fact.add_argument(
        "--batch-updates",
        action="store_true",
        help="coarsen trailing-matrix updates into row-panel batches "
        "(see docs/PERFORMANCE.md)",
    )
    p_fact.add_argument(
        "--runtime",
        choices=["serial", "threaded"],
        default="serial",
        help="executor for checkpointed/resumed runs (default: serial)",
    )
    p_fact.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend to execute with (see `tiledqr backends`; "
        "default: the plan's selected backend, falling back to reference)",
    )
    p_fact.add_argument("--workers", type=int, default=4, help="threaded worker count")
    p_fact.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="write a partial snapshot after every N completed tasks "
        "(requires --checkpoint-out; see docs/RELIABILITY.md)",
    )
    p_fact.add_argument(
        "--checkpoint-out",
        metavar="SNAP.npz",
        help="partial-snapshot path for --checkpoint-every",
    )
    p_fact.add_argument(
        "--resume",
        metavar="SNAP.npz",
        help="finish an interrupted run from this partial snapshot "
        "(pass the original n and --seed so the result can be verified)",
    )
    p_fact.add_argument(
        "--tree",
        choices=_tree_choices(),
        default=None,
        help="within-panel elimination tree ('auto' lets the optimizer "
        "pick by simulated makespan; default: the paper's flat/TS chain)",
    )
    p_fact.add_argument(
        "--bundle-out",
        metavar="BUNDLE.zip",
        help="on any terminal failure, write a failure bundle here "
        "(flight-recorder tail, in-flight tasks, metrics, checkpoint "
        "pointer) for `tiledqr postmortem`",
    )
    p_fact.set_defaults(func=_cmd_factorize)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a factorization under a fault-injection plan and "
        "report retries/failovers/overhead",
    )
    p_chaos.add_argument("n", type=int)
    p_chaos.add_argument(
        "--plan",
        required=True,
        metavar="PLAN.json",
        help="fault plan JSON (see docs/RELIABILITY.md for the format)",
    )
    p_chaos.add_argument(
        "--runtime",
        choices=["serial", "threaded", "multiprocess"],
        default="serial",
        help="executor to sabotage (default: serial); worker kills need "
        "multiprocess",
    )
    p_chaos.add_argument("--workers", type=int, default=4, help="threaded worker count")
    p_chaos.add_argument(
        "--devices",
        type=int,
        default=None,
        help="multiprocess device count (default: let Alg. 3 choose — small "
        "problems may plan a single device, leaving nothing to fail over)",
    )
    p_chaos.add_argument("--tile-size", type=int, default=16)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--max-attempts", type=int, default=3, help="retry budget per task (default: 3)"
    )
    p_chaos.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base retry backoff seconds (default: 0 — chaos runs retry immediately)",
    )
    p_chaos.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-task deadline in seconds; slower attempts count as hangs",
    )
    p_chaos.add_argument(
        "--health-checks",
        action="store_true",
        help="NaN/Inf-check every task's outputs (catches CORRUPT_* faults)",
    )
    p_chaos.add_argument(
        "--trace-out", metavar="OUT.jsonl", help="write the annotated trace here"
    )
    p_chaos.add_argument(
        "--json", metavar="OUT.json", help="also write the report as JSON"
    )
    p_chaos.add_argument(
        "--tree",
        choices=_tree_choices(),
        default=None,
        help="within-panel elimination tree for the run (default: flat/TS)",
    )
    p_chaos.add_argument(
        "--bundle-out",
        metavar="BUNDLE.zip",
        help="on an unsurvived fault plan, write a failure bundle here "
        "(includes the fault plan, so `tiledqr postmortem` names the "
        "responsible FaultSpec)",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_gantt = sub.add_parser("gantt", help="ASCII Gantt of a simulated run")
    p_gantt.add_argument("n", type=int)
    p_gantt.add_argument("--tile-size", type=int, default=16)
    p_gantt.add_argument("--width", type=int, default=100)
    p_gantt.add_argument("--out", help="also write a Chrome trace JSON here")
    p_gantt.add_argument(
        "--tree",
        choices=_tree_choices(),
        default=None,
        help="within-panel elimination tree to simulate (default: flat/TS)",
    )
    p_gantt.set_defaults(func=_cmd_gantt)

    p_trace = sub.add_parser(
        "trace",
        help="record/summarize execution traces; --diff checks sim vs real",
    )
    p_trace.add_argument(
        "target",
        nargs="?",
        default="512",
        help="matrix size to record a traced real run of, or a JSONL trace file "
        "to summarize (default: 512)",
    )
    p_trace.add_argument(
        "--runtime",
        choices=["serial", "threaded", "multiprocess"],
        default="threaded",
        help="real executor to trace (default: threaded)",
    )
    p_trace.add_argument("--workers", type=int, default=4, help="threaded worker count")
    p_trace.add_argument("--tile-size", type=int, default=16)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", help="write the recorded trace to this JSONL path")
    p_trace.add_argument(
        "--batch-updates",
        action="store_true",
        help="run (and trace) the batched row-panel update path; batched "
        "tasks appear as UNMQR_BATCH/TSMQR_BATCH spans",
    )
    p_trace.add_argument(
        "--diff",
        nargs="?",
        const=True,
        default=None,
        metavar="OTHER.jsonl",
        help="report per-kernel sim-vs-real prediction error (against a fresh "
        "simulation of the same problem, or against OTHER.jsonl)",
    )
    p_trace.add_argument(
        "--chrome",
        metavar="OUT.json",
        help="also export the trace as Chrome Trace Event JSON "
        "(chrome://tracing / Perfetto)",
    )
    p_trace.add_argument(
        "--profile-out",
        metavar="STORE.json",
        help="ingest the trace into this kernel profile store (created if "
        "missing) and print measured stats + drift vs calibration",
    )
    p_trace.add_argument(
        "--perf-out",
        metavar="BENCH.json",
        help="append makespan/compute time to this perf trajectory "
        "(checked by `tiledqr perf --check`)",
    )
    p_trace.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend to trace (see `tiledqr backends`); recorded "
        "runs tag their profile-store timings with it, which feeds the "
        "planner's backend selection",
    )
    p_trace.add_argument(
        "--tree",
        choices=_tree_choices(),
        default=None,
        help="within-panel elimination tree to record (default: flat/TS; "
        "`auto` asks the planner to pick one; recorded in the trace's "
        "provenance header)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_top = sub.add_parser(
        "top",
        help="run a live factorization with in-run telemetry and render "
        "a refreshing dashboard (progress, ETA, stragglers)",
    )
    p_top.add_argument("n", type=int)
    p_top.add_argument(
        "--runtime",
        choices=["serial", "threaded", "multiprocess"],
        default="threaded",
        help="executor to run and watch (default: threaded)",
    )
    p_top.add_argument("--workers", type=int, default=4, help="threaded worker count")
    p_top.add_argument(
        "--devices",
        type=int,
        default=None,
        help="multiprocess device count (default: let Alg. 3 choose)",
    )
    p_top.add_argument("--tile-size", type=int, default=16)
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument(
        "--batch-updates",
        action="store_true",
        help="coarsen trailing updates into row-panel batches",
    )
    p_top.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend (see `tiledqr backends`)",
    )
    p_top.add_argument(
        "--refresh", type=float, default=0.5,
        help="dashboard repaint interval in seconds (default: 0.5)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="no live repaint: run to completion, print one final "
        "snapshot (CI/artifact mode)",
    )
    p_top.add_argument(
        "--stream-out",
        metavar="OUT.jsonl",
        help="stream every bus event to this JSONL file as it happens "
        "(readable mid-run by `tiledqr watch --attach`)",
    )
    p_top.add_argument(
        "--straggler-factor",
        type=float,
        default=2.0,
        help="flag a task whose duration is >= FACTOR x prediction "
        "(default: 2.0)",
    )
    p_top.add_argument(
        "--chaos",
        metavar="PLAN.json",
        help="run under this fault-injection plan (see docs/RELIABILITY.md)",
    )
    p_top.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-task deadline seconds (hang classification; chaos runs)",
    )
    p_top.add_argument(
        "--heartbeat",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="heartbeat interval: threaded runs start a monitor thread, "
        "multiprocess runs slice their worker-reply waits and publish "
        "heartbeat.missed on silent slices (default: 0.25)",
    )
    p_top.add_argument(
        "--profile",
        metavar="STORE.json",
        help="predict per-kind durations from this profile store "
        "(straggler detection + ETA weights; default: fleet EWMA + flops)",
    )
    p_top.add_argument(
        "--tree",
        choices=_tree_choices(),
        default=None,
        help="within-panel elimination tree (default: flat/TS)",
    )
    p_top.add_argument(
        "--bundle-out",
        metavar="BUNDLE.zip",
        help="on failure or Ctrl-C, write a failure bundle here "
        "(includes the dashboard's progress snapshot) for "
        "`tiledqr postmortem`",
    )
    p_top.set_defaults(func=_cmd_top)

    p_watch = sub.add_parser(
        "watch",
        help="follow a live-telemetry JSONL stream (from `top --stream-out`) "
        "and render the dashboard",
    )
    p_watch.add_argument(
        "--attach",
        required=True,
        metavar="RUN.jsonl",
        help="live event stream to follow (append-only JSONL)",
    )
    p_watch.add_argument(
        "--refresh", type=float, default=0.5,
        help="re-read/repaint interval in seconds (default: 0.5)",
    )
    p_watch.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    p_watch.add_argument(
        "--wait",
        type=float,
        default=0.0,
        help="seconds to wait for the stream file to appear (default: 0)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_pm = sub.add_parser(
        "postmortem",
        help="root-cause a failure bundle: classification, responsible "
        "FaultSpec, causal timeline, stranded tasks, resume hint",
    )
    p_pm.add_argument(
        "bundle",
        metavar="BUNDLE.zip",
        help="failure bundle written by --bundle-out on factorize/chaos/top",
    )
    p_pm.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout (CI-friendly)",
    )
    p_pm.set_defaults(func=_cmd_postmortem)

    p_metrics = sub.add_parser(
        "metrics",
        help="rebuild a metrics registry from a saved trace and print "
        "Prometheus text exposition",
    )
    p_metrics.add_argument(
        "--from-trace",
        required=True,
        metavar="RUN.jsonl",
        help="trace JSONL (from `tiledqr trace --out`/`chaos --trace-out`)",
    )
    p_metrics.add_argument(
        "--tile-size",
        type=int,
        default=16,
        help="tile size fallback when the trace header lacks one",
    )
    p_metrics.add_argument(
        "--prefix", default="tiledqr", help="metric name prefix (default: tiledqr)"
    )
    p_metrics.add_argument(
        "--out", metavar="OUT.prom", help="write the exposition here instead of stdout"
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_back = sub.add_parser(
        "backends",
        help="list registered kernel backends; --check runs the "
        "cross-backend conformance harness",
    )
    p_back.add_argument(
        "--check",
        action="store_true",
        help="run every registered backend against the reference oracle "
        "over the conformance shape sweep; exit nonzero on any mismatch",
    )
    p_back.add_argument(
        "--json",
        metavar="OUT.json",
        help="write the listing (or, with --check, the conformance report) "
        "to this path",
    )
    p_back.set_defaults(func=_cmd_backends)

    p_perf = sub.add_parser(
        "perf",
        help="compare the newest BENCH_*.json points against their "
        "trajectory baselines",
    )
    p_perf.add_argument(
        "paths",
        nargs="*",
        help="trajectory files (default: BENCH_*.json in the current directory)",
    )
    p_perf.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when a gated metric regressed beyond the threshold",
    )
    p_perf.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative change counting as a regression (default: 0.20)",
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_check = sub.add_parser("selfcheck", help="quick install sanity battery")
    p_check.set_defaults(func=_cmd_selfcheck)

    p_rep = sub.add_parser("report", help="regenerate the full evaluation as markdown")
    p_rep.add_argument("--out", default="results/report.md")
    p_rep.add_argument("--full", action="store_true", help="paper-scale sweeps")
    p_rep.add_argument("--only", nargs="*", help="experiment ids to include")
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
