"""Workload generators: matrix families for tests and experiments.

The paper evaluates on "random floating point numbers"; real data
analysis brings structure.  These generators cover the families the
test suite and the stability experiments exercise, all reproducible
from a seed.
"""

from __future__ import annotations

import numpy as np

from .errors import ShapeError


def random_gaussian(m: int, n: int | None = None, seed: int = 0) -> np.ndarray:
    """The paper's workload: i.i.d. standard-normal entries."""
    n = m if n is None else n
    _check(m, n)
    return np.random.default_rng(seed).standard_normal((m, n))


def random_uniform(m: int, n: int | None = None, seed: int = 0) -> np.ndarray:
    """Uniform(-1, 1) entries."""
    n = m if n is None else n
    _check(m, n)
    return np.random.default_rng(seed).uniform(-1.0, 1.0, (m, n))


def graded(m: int, n: int | None = None, decay: float = 0.9, seed: int = 0) -> np.ndarray:
    """Gaussian matrix with geometrically decaying column scales —
    mildly ill conditioned, exercises pivoting-free robustness."""
    n = m if n is None else n
    _check(m, n)
    if not 0.0 < decay <= 1.0:
        raise ValueError(f"decay must be in (0, 1], got {decay}")
    a = np.random.default_rng(seed).standard_normal((m, n))
    return a * (decay ** np.arange(n))

def vandermonde(m: int, degree: int, a: float = -1.0, b: float = 1.0) -> np.ndarray:
    """Polynomial design matrix on ``m`` points — the least-squares
    workload (tall, moderately ill conditioned with degree)."""
    if m < degree + 1:
        raise ShapeError(f"need at least degree+1 rows, got {m} for degree {degree}")
    t = np.linspace(a, b, m)
    return np.vander(t, degree + 1)


def spd(n: int, seed: int = 0, shift: float = 1.0) -> np.ndarray:
    """Symmetric positive definite (for the Cholesky baselines)."""
    _check(n, n)
    a = np.random.default_rng(seed).standard_normal((n, n))
    return a @ a.T + shift * n * np.eye(n)


def near_singular(n: int, rank: int, noise: float = 1e-12, seed: int = 0) -> np.ndarray:
    """Rank-``rank`` matrix plus tiny noise — stresses the solvers'
    singularity detection."""
    _check(n, n)
    if not 0 < rank <= n:
        raise ValueError(f"rank must be in (0, {n}], got {rank}")
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, rank))
    v = rng.standard_normal((rank, n))
    return u @ v + noise * rng.standard_normal((n, n))


def orthogonal(n: int, seed: int = 0) -> np.ndarray:
    """Haar-ish orthogonal matrix via our own Householder QR."""
    from .kernels.householder import householder_qr

    _check(n, n)
    q, r = householder_qr(np.random.default_rng(seed).standard_normal((n, n)))
    # Fix the sign convention so the distribution is properly uniform.
    return q * np.sign(np.diag(r))


def _check(m: int, n: int) -> None:
    if m < 1 or n < 1:
        raise ShapeError(f"matrix dimensions must be positive, got {m}x{n}")
