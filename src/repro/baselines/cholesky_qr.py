"""Cholesky-based and Gram-Schmidt QR variants.

The paper's background (Sec. I) mentions "several types of QR
decomposition, such as the Householder or Cholesky methods" and picks
Householder for its stability and parallel fit.  These from-scratch
alternatives exist to make that trade-off measurable: CholeskyQR is
BLAS-3-fast but loses orthogonality as cond(A)^2; CholeskyQR2 repairs it
for moderately conditioned inputs; modified Gram-Schmidt degrades
linearly in cond(A).  See ``repro.experiments.stability``.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError


def cholesky_factor(g: np.ndarray) -> np.ndarray:
    """Upper-triangular Cholesky factor ``R`` with ``G = R^T R``.

    From-scratch right-looking algorithm (no LAPACK ``potrf``); raises
    :class:`numpy.linalg.LinAlgError` when ``G`` is not (numerically)
    positive definite — which is exactly how CholeskyQR fails on
    ill-conditioned inputs.
    """
    g = np.asarray(g, dtype=np.float64)
    if g.ndim != 2 or g.shape[0] != g.shape[1]:
        raise KernelError(f"Cholesky needs a square matrix, got {g.shape}")
    n = g.shape[0]
    r = np.triu(g).astype(np.float64, copy=True)
    for k in range(n):
        d = r[k, k]
        if d <= 0.0 or not np.isfinite(d):
            raise np.linalg.LinAlgError(
                f"matrix not positive definite at pivot {k} (value {d:.3e})"
            )
        d = np.sqrt(d)
        r[k, k] = d
        if k + 1 < n:
            r[k, k + 1 :] /= d
            # Trailing update: G' = G - r_k^T r_k on the upper triangle.
            r[k + 1 :, k + 1 :] -= np.outer(r[k, k + 1 :], r[k, k + 1 :])
    return np.triu(r)


def cholesky_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CholeskyQR: ``R = chol(A^T A)``, ``Q = A R^{-1}``.

    One GEMM + one small Cholesky + one triangular solve — the fastest
    QR on parallel hardware, but ``||Q^T Q - I||`` grows like
    ``cond(A)^2 * eps``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1]:
        raise KernelError(f"cholesky_qr needs a tall matrix, got {a.shape}")
    r = cholesky_factor(a.T @ a)
    # Q = A R^-1 via a from-scratch forward sweep on R^T x^T = A^T.
    q = _solve_upper_from_right(a, r)
    return q, r


def cholesky_qr2(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CholeskyQR2: run CholeskyQR twice and merge the R factors.

    The second pass orthonormalizes the first pass's Q, recovering
    Householder-level orthogonality whenever the first pass does not
    outright fail (cond(A) below ~1e8 in double precision).
    """
    q1, r1 = cholesky_qr(a)
    q2, r2 = cholesky_qr(q1)
    return q2, r2 @ r1


def _solve_upper_from_right(a: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Compute ``A @ R^{-1}`` column block by column block."""
    n = r.shape[0]
    q = np.array(a, dtype=np.float64, copy=True)
    for j in range(n):
        q[:, j] -= q[:, :j] @ r[:j, j]
        q[:, j] /= r[j, j]
    return q


def modified_gram_schmidt(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt QR (column-by-column re-orthogonalization).

    Loses orthogonality like ``cond(A) * eps`` — between Householder
    (cond-independent) and CholeskyQR (cond^2).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1]:
        raise KernelError(f"modified_gram_schmidt needs a tall matrix, got {a.shape}")
    m, n = a.shape
    q = a.copy()
    r = np.zeros((n, n))
    for k in range(n):
        r[k, k] = np.linalg.norm(q[:, k])
        if r[k, k] == 0.0:
            raise np.linalg.LinAlgError(f"rank deficiency at column {k}")
        q[:, k] /= r[k, k]
        if k + 1 < n:
            r[k, k + 1 :] = q[:, k] @ q[:, k + 1 :]
            q[:, k + 1 :] -= np.outer(q[:, k], r[k, k + 1 :])
    return q, r
