"""Alternative tile-distribution strategies (paper Fig. 10).

The paper compares its guide array against two baselines:

* *even* — every participating device gets the same number of columns;
* *depending on the number of cores* — columns proportional to each
  device's core count (a hardware-spec heuristic that ignores how those
  cores actually perform on tile kernels).

Both are expressed as ordinary :class:`~repro.core.plan.DistributionPlan`
objects whose guide arrays encode the alternative cycle, so every
simulator/executor runs them identically to the optimized plan.
"""

from __future__ import annotations

from ..config import DEFAULT_TILE_SIZE
from ..core.guide_array import build_guide_array, integer_ratio
from ..core.plan import DistributionPlan
from ..devices.registry import SystemSpec
from ..errors import PlanError


def _plan_from_ratio(
    system: SystemSpec,
    main_device: str,
    participants: list[str],
    ratio: list[int],
    tile_size: int,
    label: str,
) -> DistributionPlan:
    guide = tuple(build_guide_array(ratio, participants))
    return DistributionPlan(
        system=system,
        main_device=main_device,
        participants=tuple(participants),
        guide_array=guide,
        tile_size=tile_size,
        notes={"distribution": label, "ratio": ratio},
    )


def even_plan(
    system: SystemSpec,
    main_device: str,
    participants: list[str] | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> DistributionPlan:
    """Same number of tile columns for every participating device."""
    parts = list(participants) if participants is not None else list(system.device_ids)
    if main_device not in parts:
        raise PlanError(f"main device {main_device!r} must participate")
    return _plan_from_ratio(
        system, main_device, parts, [1] * len(parts), tile_size, "even"
    )


def cores_based_plan(
    system: SystemSpec,
    main_device: str,
    participants: list[str] | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> DistributionPlan:
    """Columns proportional to each device's physical core count.

    GPU "cores" wildly overstate per-tile-kernel capability (a GTX680's
    1536 cores are not 384x a quad-core CPU at these kernel sizes), which
    is exactly why the paper's throughput-measured guide array wins.
    """
    parts = list(participants) if participants is not None else list(system.device_ids)
    if main_device not in parts:
        raise PlanError(f"main device {main_device!r} must participate")
    cores = [float(system.device(d).cores) for d in parts]
    ratio = integer_ratio(cores)
    return _plan_from_ratio(system, main_device, parts, ratio, tile_size, "cores")


def round_robin_plan(
    system: SystemSpec,
    main_device: str,
    participants: list[str] | None = None,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> DistributionPlan:
    """Plain cyclic distribution in participant order (ablation extra)."""
    parts = list(participants) if participants is not None else list(system.device_ids)
    if main_device not in parts:
        raise PlanError(f"main device {main_device!r} must participate")
    plan = _plan_from_ratio(
        system, main_device, parts, [1] * len(parts), tile_size, "round-robin"
    )
    # build_guide_array on an all-ones ratio already yields participant
    # order, but make the intent explicit:
    return DistributionPlan(
        system=plan.system,
        main_device=plan.main_device,
        participants=plan.participants,
        guide_array=tuple(parts),
        tile_size=tile_size,
        notes={"distribution": "round-robin"},
    )
