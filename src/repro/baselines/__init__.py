"""Baseline strategies the paper compares against.

* :mod:`repro.baselines.distributions` — Fig. 10's alternatives to the
  guide array: even distribution and cores-proportional distribution.
* :mod:`repro.baselines.main_selection` — Fig. 9's alternatives to
  Alg. 2: a forced main device and the "no specific main" mode.
* :mod:`repro.baselines.sequential` — single-device dense Householder QR
  (Algorithm 1), the non-tiled reference.
"""

from .distributions import even_plan, cores_based_plan, round_robin_plan
from .main_selection import forced_main_plan, no_main_plan
from .sequential import sequential_qr, sequential_time_estimate

__all__ = [
    "even_plan",
    "cores_based_plan",
    "round_robin_plan",
    "forced_main_plan",
    "no_main_plan",
    "sequential_qr",
    "sequential_time_estimate",
]
