"""Sequential dense Householder QR — the non-tiled reference.

Used in tests as a numerical oracle (same algorithm family, no tiling)
and in reports as the single-slot time reference.
"""

from __future__ import annotations

import numpy as np

from ..dag.tasks import Step
from ..devices.model import DeviceSpec
from ..kernels.flops import flops_dense_qr
from ..kernels.householder import householder_qr


def sequential_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense Householder QR (paper Algorithm 1): ``A = Q R``."""
    return householder_qr(np.asarray(a, dtype=np.float64))


def sequential_time_estimate(device: DeviceSpec, n: int, tile_size: int) -> float:
    """Modelled time for one slot of ``device`` to factor ``n x n``
    running the dense algorithm at its update-kernel rate.

    A coarse lower-bound reference: dense QR flops divided by the
    device's UE-rate (its best sustained GEMM-like rate).
    """
    rate = device.timing.rates_flops[Step.UE]
    return flops_dense_qr(n) / rate
