"""Alternative main-device policies (paper Fig. 9).

The paper compares Alg. 2's choice (GTX580) against forcing the GTX680,
forcing the CPU, and a "no specific main computing device" mode where
every GPU triangulates/eliminates its own columns.
"""

from __future__ import annotations

from ..config import DEFAULT_TILE_SIZE
from ..core.distribution import guide_for_participants
from ..core.device_count import order_by_update_speed
from ..core.plan import DistributionPlan
from ..devices.registry import SystemSpec
from ..errors import PlanError


def forced_main_plan(
    system: SystemSpec,
    main_device: str,
    grid_rows: int,
    grid_cols: int,
    tile_size: int = DEFAULT_TILE_SIZE,
    participants: list[str] | None = None,
    main_updates: str = "residual",
) -> DistributionPlan:
    """A full-participation plan with an explicitly chosen main device."""
    if main_device not in system.device_ids:
        raise PlanError(f"unknown device {main_device!r}")
    if participants is None:
        ordered = order_by_update_speed(system, main_device, tile_size)
    else:
        ordered = list(participants)
        if main_device not in ordered:
            raise PlanError("main device must participate")
    _ratio, guide = guide_for_participants(
        system, ordered, main_device, grid_rows, grid_cols, tile_size,
        main_updates=main_updates,
    )
    return DistributionPlan(
        system=system,
        main_device=main_device,
        participants=tuple(ordered),
        guide_array=tuple(guide),
        tile_size=tile_size,
        notes={"policy": f"forced-main:{main_device}"},
    )


def no_main_plan(
    system: SystemSpec,
    grid_rows: int,
    grid_cols: int,
    tile_size: int = DEFAULT_TILE_SIZE,
    gpus_only_panels: bool = True,
) -> DistributionPlan:
    """The Fig. 9 "None" baseline: panels follow column ownership.

    Every device triangulates and eliminates the panels of columns it
    owns, so the panel chain migrates around the machine and each
    device's updates compete with its own panel work.  Following the
    paper ("all GPUs process their own triangulation and elimination"),
    panel-capable columns go to GPUs only by default — a CPU panel chain
    would dominate everything it owns.
    """
    gpus = [d.device_id for d in system.gpus()]
    if not gpus:
        gpus_only_panels = False
    owners = gpus if gpus_only_panels else list(system.device_ids)
    if not owners:
        raise PlanError("system has no devices to own columns")
    lead = owners[0]
    _ratio, guide = guide_for_participants(
        system, owners, lead, grid_rows, grid_cols, tile_size,
        main_updates="always",  # nobody is special in this mode
    )
    return DistributionPlan(
        system=system,
        main_device=lead,  # owner of column 0; panels follow columns
        participants=tuple(dict.fromkeys([*owners, *system.device_ids]))
        if not gpus_only_panels
        else tuple(owners),
        guide_array=tuple(guide),
        tile_size=tile_size,
        panel_follows_column=True,
        notes={"policy": "no-main"},
    )
