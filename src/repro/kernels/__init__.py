"""From-scratch Householder tile kernels for tiled QR decomposition.

These are NumPy implementations of the four PLASMA-style tile kernels the
paper builds on (Sec. II-B):

======================  =======================  ==========================
Paper step              Kernel (LAPACK name)     Function here
======================  =======================  ==========================
Triangulation (T)       GEQRT                    :func:`geqrt`
Update for T (UT)       UNMQR                    :func:`unmqr`
Elimination (E)         TSQRT / TTQRT            :func:`tsqrt` / :func:`ttqrt`
Update for E (UE)       TSMQR / TTMQR            :func:`tsmqr` / :func:`ttmqr`
======================  =======================  ==========================

All kernels use compact-WY block reflectors: a factorization produces a
matrix of Householder vectors ``V``, scalars ``tau`` and an upper-triangular
factor ``Tf`` such that ``Q = I - V @ Tf @ V.T`` and
``Q.T = I - V @ Tf.T @ V.T``.
"""

from .householder import HouseholderReflector, make_reflector, apply_reflector
from .blockreflector import build_t_factor, apply_block_reflector
from .workspace import Workspace, thread_workspace, drain_fallbacks
from .geqrt import GEQRTResult, geqrt
from .unmqr import unmqr
from .tsqrt import TSQRTResult, tsqrt
from .tsmqr import tsmqr
from .ttqrt import ttqrt
from .ttmqr import ttmqr
from .batched import tsmqr_batch, ttmqr_batch, unmqr_batch
from .tsqr import TSQRResult, tsqr
from .backends import (
    KernelBackend,
    FunctionBackend,
    register_backend,
    get_backend,
    available_backends,
    resolve_backend,
    DEFAULT_BACKEND,
)
from .flops import (
    flops_geqrt,
    flops_unmqr,
    flops_unmqr_batch,
    flops_tsqrt,
    flops_tsmqr,
    flops_tsmqr_batch,
    flops_ttqrt,
    flops_ttmqr,
    flops_ttmqr_batch,
    flops_tiled_qr,
    flops_dense_qr,
    flops_orgqr,
)
from .validation import (
    check_reconstruction,
    check_orthogonality,
    check_upper_triangular,
)

__all__ = [
    "HouseholderReflector",
    "make_reflector",
    "apply_reflector",
    "build_t_factor",
    "apply_block_reflector",
    "Workspace",
    "thread_workspace",
    "drain_fallbacks",
    "GEQRTResult",
    "geqrt",
    "unmqr",
    "unmqr_batch",
    "TSQRTResult",
    "tsqrt",
    "tsmqr",
    "tsmqr_batch",
    "ttqrt",
    "ttmqr",
    "ttmqr_batch",
    "TSQRResult",
    "tsqr",
    "KernelBackend",
    "FunctionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
    "DEFAULT_BACKEND",
    "flops_geqrt",
    "flops_unmqr",
    "flops_unmqr_batch",
    "flops_tsqrt",
    "flops_tsmqr",
    "flops_tsmqr_batch",
    "flops_ttqrt",
    "flops_ttmqr",
    "flops_ttmqr_batch",
    "flops_tiled_qr",
    "flops_dense_qr",
    "flops_orgqr",
    "check_reconstruction",
    "check_orthogonality",
    "check_upper_triangular",
]
