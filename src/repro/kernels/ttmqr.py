"""TTMQR — update kernel for triangle-on-triangle elimination.

Numerically identical to :func:`repro.kernels.tsmqr` (the application only
sees ``V2`` and ``Tf``); kept as a named entry point because the paper —
and the DAG builder — distinguish the two update kinds, and because the
triangular ``V2`` halves the achievable flop count on a real machine
(which the device *cost models* account for).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .tsqrt import TSQRTResult
from .tsmqr import tsmqr
from .workspace import Workspace


def ttmqr(
    factors: TSQRTResult,
    c1: np.ndarray,
    c2: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a TTQRT orthogonal factor to a stacked tile pair in place.

    See :func:`repro.kernels.tsmqr` for the parameter contract.
    """
    if factors.kind != "TT":
        raise KernelError(f"ttmqr requires TT factors, got kind={factors.kind!r}")
    return tsmqr(factors, c1, c2, transpose=transpose, workspace=workspace)
