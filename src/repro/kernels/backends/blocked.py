"""The ``blocked`` backend: cache-blocked update GEMMs for large tiles.

Tuning target: on wide tiles / batched row panels the update kernels'
GEMM operands (``C``, the ``(k, n)`` scratch ``W``) outgrow the last-level
cache, and a single full-width ``matmul`` streams them from memory three
times.  This backend chunks every update into column slabs of at most
:data:`CHUNK_COLS` columns, so each slab's working set stays
cache-resident across the three GEMMs of the compact-WY application.

Bit-exactness: column ``j`` of a GEMM result depends only on column
``j`` of the right-hand operand, and the per-column dot products are
evaluated identically whether the GEMM is called on a slab or on the
full width — the same property the batched-vs-per-tile bit-identity
tests already pin down for this BLAS.  Chunking therefore changes *when*
columns are computed, not *what* is computed, and the backend declares
``bit_exact=True``: its end-to-end R is bitwise equal to the reference
backend's (enforced by the conformance harness).

The factorization kernels (GEQRT/TSQRT/TTQRT) are the reference
functions themselves: a differently-blocked factorization would regroup
*reductions* (not just columns) and lose bit-identity, and Fig. 4 shows
the update kernels dominate runtime anyway — they are where large-tile
tuning pays.
"""

from __future__ import annotations

import numpy as np

from ..batched import tsmqr_batch as _ref_tsmqr_batch
from ..batched import unmqr_batch as _ref_unmqr_batch
from ..geqrt import geqrt
from ..tsmqr import tsmqr as _ref_tsmqr
from ..tsqrt import tsqrt
from ..ttqrt import ttqrt
from ...errors import KernelError

#: Column-slab width.  128 float64 columns of a <=128-row operand pair
#: keep the three GEMM working sets within a typical 1-2 MiB L2 slice.
CHUNK_COLS = 128


def _slabs(n: int):
    for j0 in range(0, n, CHUNK_COLS):
        yield j0, min(j0 + CHUNK_COLS, n)


def unmqr_blocked(factors, c, transpose: bool = True, workspace=None):
    """:func:`repro.kernels.unmqr` evaluated in column slabs."""
    c = np.asarray(c)
    if c.ndim != 2 or c.shape[1] <= CHUNK_COLS:
        # Narrow (or invalid) targets: the reference kernel does the
        # work — and the validation — in one shot.
        return _ref_unmqr_batch(factors, c, transpose=transpose, workspace=workspace)
    for j0, j1 in _slabs(c.shape[1]):
        _ref_unmqr_batch(
            factors, c[:, j0:j1], transpose=transpose, workspace=workspace
        )
    return c


def tsmqr_blocked(factors, c1, c2, transpose: bool = True, workspace=None):
    """:func:`repro.kernels.tsmqr` evaluated in column slabs."""
    c1 = np.asarray(c1)
    c2 = np.asarray(c2)
    if (
        c1.ndim != 2
        or c2.ndim != 2
        or c1.shape[1] != c2.shape[1]
        or c1.shape[1] <= CHUNK_COLS
    ):
        return _ref_tsmqr(factors, c1, c2, transpose=transpose, workspace=workspace)
    for j0, j1 in _slabs(c1.shape[1]):
        _ref_tsmqr(
            factors, c1[:, j0:j1], c2[:, j0:j1], transpose=transpose,
            workspace=workspace,
        )
    return c1, c2


def ttmqr_blocked(factors, c1, c2, transpose: bool = True, workspace=None):
    """:func:`repro.kernels.ttmqr` evaluated in column slabs."""
    if factors.kind != "TT":
        raise KernelError(f"ttmqr requires TT factors, got kind={factors.kind!r}")
    return tsmqr_blocked(factors, c1, c2, transpose=transpose, workspace=workspace)


def unmqr_batch_blocked(factors, panel, transpose: bool = True, workspace=None):
    """Batched row-panel variant — the panel is exactly the wide case."""
    return unmqr_blocked(factors, panel, transpose=transpose, workspace=workspace)


def tsmqr_batch_blocked(factors, panel1, panel2, transpose: bool = True, workspace=None):
    panel1 = np.asarray(panel1)
    panel2 = np.asarray(panel2)
    if panel1.ndim != 2 or panel2.ndim != 2 or panel1.shape[1] != panel2.shape[1]:
        # Delegate shape errors to the reference batch kernel's message.
        return _ref_tsmqr_batch(
            factors, panel1, panel2, transpose=transpose, workspace=workspace
        )
    return tsmqr_blocked(factors, panel1, panel2, transpose=transpose, workspace=workspace)


def ttmqr_batch_blocked(factors, panel1, panel2, transpose: bool = True, workspace=None):
    if factors.kind != "TT":
        raise KernelError(f"ttmqr_batch requires TT factors, got kind={factors.kind!r}")
    return tsmqr_batch_blocked(
        factors, panel1, panel2, transpose=transpose, workspace=workspace
    )


def _make():
    from . import FunctionBackend

    return FunctionBackend(
        name="blocked",
        description=(
            f"NumPy with update GEMMs chunked into {CHUNK_COLS}-column "
            f"cache slabs (large tiles / wide panels)"
        ),
        geqrt=geqrt,
        tsqrt=tsqrt,
        ttqrt=ttqrt,
        unmqr=unmqr_blocked,
        tsmqr=tsmqr_blocked,
        ttmqr=ttmqr_blocked,
        unmqr_batch=unmqr_batch_blocked,
        tsmqr_batch=tsmqr_batch_blocked,
        ttmqr_batch=ttmqr_batch_blocked,
        compiled=False,
        bit_exact=True,
    )


BLOCKED_BACKEND = _make()
