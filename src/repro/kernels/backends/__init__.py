"""Pluggable kernel backends behind a process-wide registry.

The paper's speedups come from tuned per-device kernels (Fig. 4's
GEQRT/TSQRT/UNMQR/TSMQR timings drive Algs. 2-4).  This package is the
seam those tuned implementations plug into: a :class:`KernelBackend` is
one complete set of the six tile kernels plus their batched row-panel
variants, registered under a name and interchangeable everywhere the
runtimes call a kernel.

Shipped backends
----------------
``reference``
    The pure-NumPy kernels of :mod:`repro.kernels` — the conformance
    oracle every other backend is checked against.
``blocked``
    Same factorization kernels as ``reference`` (bit-identical R), with
    the update GEMMs chunked into cache-sized column slabs for large
    tiles / wide panels (see :mod:`repro.kernels.backends.blocked`).
``numba``
    Jitted factorization loops (:mod:`repro.kernels.backends.numba_backend`).
    Registered only when numba imports; absence is a silent no-op, so
    the library never requires the dependency.

Every registered backend must pass the differential conformance harness
(:mod:`repro.kernels.backends.conformance`, ``tiledqr backends --check``,
``tests/test_backend_conformance.py``) against ``reference`` before it
is trusted: per-kernel elementwise agreement at ``<= 1e-12`` (float64),
input/aliasing safety, and — for backends declaring ``bit_exact`` —
bit-identical end-to-end R.  Backend selection from measured timings is
:func:`repro.core.backend_select.select_kernel_backends`; see
``docs/KERNELS.md`` for the full contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

from ...errors import KernelError

#: Attribute names every backend must expose as callables, in the order
#: the paper introduces them (factorizations, then updates, then the
#: coarsened batch variants).
KERNEL_NAMES = (
    "geqrt",
    "tsqrt",
    "ttqrt",
    "unmqr",
    "tsmqr",
    "ttmqr",
    "unmqr_batch",
    "tsmqr_batch",
    "ttmqr_batch",
)

#: The backend used when none is requested (also the conformance oracle).
DEFAULT_BACKEND = "reference"


@runtime_checkable
class KernelBackend(Protocol):
    """Protocol every kernel backend satisfies.

    The kernel attributes are callables with the exact signatures of
    their :mod:`repro.kernels` counterparts (``geqrt(a, inner_block=None)``,
    ``tsmqr(factors, c1, c2, transpose=True, workspace=None)``, ...) and
    must return the same result types (:class:`~repro.kernels.GEQRTResult`
    / :class:`~repro.kernels.TSQRTResult` / the updated arrays), so
    runtimes, the factor log, and checkpoints are backend-agnostic.
    """

    name: str
    description: str
    #: True when the backend involves ahead-of-time/JIT compilation —
    #: the performance gate in ``benchmarks/bench_backend_kernels.py``
    #: only applies to compiled backends.
    compiled: bool
    #: True when the backend guarantees *bit-identical* results to the
    #: reference backend (same arithmetic, possibly regrouped only along
    #: GEMM columns).  The conformance harness enforces bitwise equality
    #: of the end-to-end R factor for such backends, and tolerance-level
    #: agreement (``<= 1e-12`` in float64) for the rest.
    bit_exact: bool

    geqrt: Callable[..., Any]
    tsqrt: Callable[..., Any]
    ttqrt: Callable[..., Any]
    unmqr: Callable[..., Any]
    tsmqr: Callable[..., Any]
    ttmqr: Callable[..., Any]
    unmqr_batch: Callable[..., Any]
    tsmqr_batch: Callable[..., Any]
    ttmqr_batch: Callable[..., Any]


@dataclass(frozen=True)
class FunctionBackend:
    """A :class:`KernelBackend` assembled from plain functions.

    The concrete carrier the shipped backends use; anything satisfying
    the protocol (a module, a class instance) registers just as well.
    """

    name: str
    description: str
    geqrt: Callable[..., Any]
    tsqrt: Callable[..., Any]
    ttqrt: Callable[..., Any]
    unmqr: Callable[..., Any]
    tsmqr: Callable[..., Any]
    ttmqr: Callable[..., Any]
    unmqr_batch: Callable[..., Any]
    tsmqr_batch: Callable[..., Any]
    ttmqr_batch: Callable[..., Any]
    compiled: bool = False
    bit_exact: bool = True


_LOCK = threading.Lock()
_REGISTRY: dict[str, KernelBackend] = {}


def _validate(backend: Any) -> None:
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise KernelError("a kernel backend needs a non-empty string `name`")
    for attr in KERNEL_NAMES:
        fn = getattr(backend, attr, None)
        if not callable(fn):
            raise KernelError(
                f"backend {name!r} is missing kernel {attr!r} "
                f"(must provide callables for {', '.join(KERNEL_NAMES)})"
            )
    for attr in ("compiled", "bit_exact"):
        if not isinstance(getattr(backend, attr, None), bool):
            raise KernelError(f"backend {name!r} must declare boolean {attr!r}")


def register_backend(backend: KernelBackend, replace: bool = False) -> KernelBackend:
    """Register a backend under ``backend.name``.

    Refuses to shadow an existing name unless ``replace=True`` (so a
    typo cannot silently reroute every kernel call); returns the backend
    for chaining.
    """
    _validate(backend)
    with _LOCK:
        if backend.name in _REGISTRY and not replace:
            raise KernelError(
                f"backend {backend.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test helper; unknown names are a no-op)."""
    with _LOCK:
        _REGISTRY.pop(name, None)


def get_backend(name: str) -> KernelBackend:
    """Look a backend up by name; unknown names list what exists."""
    with _LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(available_backends()) or '(none)'}"
        )
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, ``reference`` first, rest sorted."""
    with _LOCK:
        names = set(_REGISTRY)
    head = [DEFAULT_BACKEND] if DEFAULT_BACKEND in names else []
    return tuple(head + sorted(names - {DEFAULT_BACKEND}))


def resolve_backend(backend: "KernelBackend | str | None") -> KernelBackend:
    """Normalize a backend argument: ``None`` -> default, str -> lookup,
    backend objects pass through (validated)."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, str):
        return get_backend(backend)
    _validate(backend)
    return backend


def backend_info() -> list[dict]:
    """One describing dict per registered backend (CLI listing order)."""
    out = []
    for name in available_backends():
        b = get_backend(name)
        out.append(
            {
                "name": b.name,
                "description": b.description,
                "compiled": b.compiled,
                "bit_exact": b.bit_exact,
                "default": b.name == DEFAULT_BACKEND,
            }
        )
    return out


# -- shipped backends -------------------------------------------------------

from .reference import REFERENCE_BACKEND  # noqa: E402
from .blocked import BLOCKED_BACKEND  # noqa: E402
from .numba_backend import HAVE_NUMBA, make_numba_backend  # noqa: E402

register_backend(REFERENCE_BACKEND)
register_backend(BLOCKED_BACKEND)

#: The numba backend instance, or ``None`` when numba is absent — the
#: graceful-degradation contract: importing this package never fails for
#: lack of an optional compiler.
NUMBA_BACKEND = make_numba_backend()
if NUMBA_BACKEND is not None:  # pragma: no cover - requires numba installed
    register_backend(NUMBA_BACKEND)

__all__ = [
    "KERNEL_NAMES",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "FunctionBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
    "backend_info",
    "REFERENCE_BACKEND",
    "BLOCKED_BACKEND",
    "NUMBA_BACKEND",
    "HAVE_NUMBA",
]
