"""The ``reference`` backend: the pure-NumPy kernels, unchanged.

This is a thin packaging of the existing :mod:`repro.kernels` functions
as a :class:`~repro.kernels.backends.FunctionBackend` — the functions
are the *same objects* the library has always exported, so code calling
``repro.kernels.geqrt`` directly and code routing through the registry
execute identical arithmetic.  Every other backend is conformance-tested
against this one.
"""

from __future__ import annotations

from ..batched import tsmqr_batch, ttmqr_batch, unmqr_batch
from ..geqrt import geqrt
from ..tsmqr import tsmqr
from ..tsqrt import tsqrt
from ..ttmqr import ttmqr
from ..ttqrt import ttqrt
from ..unmqr import unmqr

# Imported lazily by backends/__init__ to avoid a circular import with
# the repro.kernels package __init__.


def _make():
    from . import FunctionBackend

    return FunctionBackend(
        name="reference",
        description="pure-NumPy oracle kernels (repro.kernels)",
        geqrt=geqrt,
        tsqrt=tsqrt,
        ttqrt=ttqrt,
        unmqr=unmqr,
        tsmqr=tsmqr,
        ttmqr=ttmqr,
        unmqr_batch=unmqr_batch,
        tsmqr_batch=tsmqr_batch,
        ttmqr_batch=ttmqr_batch,
        compiled=False,
        bit_exact=True,
    )


REFERENCE_BACKEND = _make()
