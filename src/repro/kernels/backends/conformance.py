"""Differential conformance harness: every backend vs the reference.

What makes multiple kernel backends safe to ship is an oracle that
proves they are numerically interchangeable.  This module runs each
registered backend against the ``reference`` backend over a
deterministic grid of tile sizes, shapes, and dtypes and checks, per
kernel:

* **elementwise agreement** — every output array within ``1e-12`` of
  the reference in float64 (``1e-4`` in float32, where 1e-12 is below
  the representable resolution);
* **input safety** — read-only operands (factor arrays, GEQRT/TSQRT
  inputs) are bitwise untouched, i.e. ``out=`` workspace buffers never
  alias or corrupt inputs;
* **end-to-end bit-identity** — a full serial factorization under the
  backend reproduces the reference R *bitwise* when the backend
  declares ``bit_exact``, and within ``1e-12`` relative otherwise.

The same checks back three consumers: ``tiledqr backends --check`` (CLI
+ CI artifact), the hypothesis-driven property suite in
``tests/test_backend_conformance.py``, and ad-hoc vetting of
out-of-tree backends before registration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ...errors import KernelError

#: Conformance bound per dtype: 1e-12 absolute in float64 (the ISSUE
#: contract); float32 gets ~100x its machine epsilon.
TOLERANCES = {np.dtype(np.float64): 1e-12, np.dtype(np.float32): 1e-4}

#: Deterministic sweep defaults: 1x1, tiny, paper-ish, and one
#: above the geqrt auto-blocking threshold (48).
DEFAULT_TILE_SIZES = (1, 2, 5, 8, 16, 33, 64)
DEFAULT_DTYPES = (np.float64, np.float32)
_SEED = 0x7150


def tolerance_for(dtype) -> float:
    dt = np.dtype(dtype)
    try:
        return TOLERANCES[dt]
    except KeyError:
        raise KernelError(f"no conformance tolerance defined for dtype {dt}") from None


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise deviation, inf on shape/non-finite mismatch."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    both = np.concatenate([np.ravel(a), np.ravel(b)])
    if not np.all(np.isfinite(both)):
        finite_match = np.array_equal(np.isfinite(a), np.isfinite(b))
        if not finite_match:
            return float("inf")
    diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
    return float(np.nanmax(diff)) if diff.size else 0.0


@dataclass
class ConformanceCase:
    """Result of one backend/kernel/configuration comparison."""

    backend: str
    kernel: str
    config: str
    max_err: float
    tol: float
    ok: bool
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "kernel": self.kernel,
            "config": self.config,
            "max_err": self.max_err,
            "tol": self.tol,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class ConformanceReport:
    """Full sweep outcome, serializable for the CI artifact."""

    backends: list[str] = field(default_factory=list)
    cases: list[ConformanceCase] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.cases) and bool(self.cases)

    def failures(self) -> list[ConformanceCase]:
        return [c for c in self.cases if not c.ok]

    def to_dict(self) -> dict:
        return {
            "kind": "backend-conformance-report",
            "backends": list(self.backends),
            "passed": self.passed,
            "num_cases": len(self.cases),
            "failures": [c.to_dict() for c in self.failures()],
            "cases": [c.to_dict() for c in self.cases],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def to_text(self) -> str:
        by_backend: dict[str, list[ConformanceCase]] = {}
        for c in self.cases:
            by_backend.setdefault(c.backend, []).append(c)
        lines = [
            f"backend conformance vs reference: "
            f"{len(self.cases)} case(s) over {', '.join(self.backends) or '(none)'}"
        ]
        for name, cases in sorted(by_backend.items()):
            bad = [c for c in cases if not c.ok]
            worst = max((c.max_err for c in cases), default=0.0)
            status = "PASS" if not bad else f"FAIL ({len(bad)} case(s))"
            lines.append(
                f"  {name:12s} {status:18s} worst |err| {worst:.3e} "
                f"over {len(cases)} case(s)"
            )
            for c in bad:
                lines.append(
                    f"    FAIL {c.kernel} [{c.config}]: "
                    f"max err {c.max_err:.3e} > tol {c.tol:.0e} {c.note}"
                )
        lines.append("conformance: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def _rng(*salt: int) -> np.random.Generator:
    return np.random.default_rng([_SEED, *salt])


def _compare(cases, backend_name, kernel, config, pairs, tol, extra_ok=True, note=""):
    """Record one case comparing named (candidate, oracle) array pairs."""
    err = max((max_abs_diff(got, want) for got, want in pairs), default=0.0)
    cases.append(
        ConformanceCase(
            backend=backend_name,
            kernel=kernel,
            config=config,
            max_err=err,
            tol=tol,
            ok=bool(err <= tol) and extra_ok,
            note=note,
        )
    )


def _factor_pairs(got, want):
    if hasattr(got, "v2"):
        return [(got.r, want.r), (got.v2, want.v2), (got.tf, want.tf), (got.taus, want.taus)]
    return [(got.r, want.r), (got.v, want.v), (got.tf, want.tf), (got.taus, want.taus)]


def check_kernels(backend, reference, tile_sizes=DEFAULT_TILE_SIZES,
                  dtypes=DEFAULT_DTYPES) -> list[ConformanceCase]:
    """Per-kernel differential checks for one backend."""
    from ..workspace import Workspace

    cases: list[ConformanceCase] = []
    ws = Workspace()
    for dtype in dtypes:
        tol = tolerance_for(dtype)
        for b in tile_sizes:
            cfg = f"b={b} {np.dtype(dtype).name}"
            rng = _rng(b, np.dtype(dtype).itemsize)

            # GEQRT: square and tall, input untouched.
            for shape_tag, m in (("sq", b), ("tall", b + 3)):
                a = rng.standard_normal((m, b)).astype(dtype)
                before = a.copy()
                got = backend.geqrt(a)
                want = reference.geqrt(a)
                _compare(
                    cases, backend.name, "GEQRT", f"{cfg} {shape_tag}",
                    _factor_pairs(got, want), tol,
                    extra_ok=np.array_equal(a, before),
                    note="" if np.array_equal(a, before) else "(input modified)",
                )

            # TSQRT / TTQRT (TT needs a square bottom; TS also ragged).
            r1 = np.triu(rng.standard_normal((b, b))).astype(dtype)
            for kname, bot_rows, tt in (
                ("TSQRT", b, False),
                ("TSQRT", max(1, b - 1), False),  # ragged bottom boundary tile
                ("TTQRT", b, True),
            ):
                a2 = rng.standard_normal((bot_rows, b)).astype(dtype)
                if tt:
                    a2 = np.triu(a2)
                in1, in2 = r1.copy(), a2.copy()
                fn = backend.ttqrt if tt else backend.tsqrt
                ref_fn = reference.ttqrt if tt else reference.tsqrt
                got = fn(r1, a2)
                want = ref_fn(r1, a2)
                untouched = np.array_equal(r1, in1) and np.array_equal(a2, in2)
                _compare(
                    cases, backend.name, kname, f"{cfg} m2={bot_rows}",
                    _factor_pairs(got, want), tol,
                    extra_ok=untouched,
                    note="" if untouched else "(input modified)",
                )

            # Update kernels: both directions, factor arrays untouched.
            fg = reference.geqrt(rng.standard_normal((b, b)).astype(dtype))
            fe_ts = reference.tsqrt(
                fg.r.copy(), rng.standard_normal((b, b)).astype(dtype)
            )
            fe_tt = reference.ttqrt(
                fg.r.copy(), np.triu(rng.standard_normal((b, b))).astype(dtype)
            )
            width = 3 * b  # one "row panel" worth of columns
            for transpose in (True, False):
                tdir = "QT" if transpose else "Q"
                c = rng.standard_normal((b, width)).astype(dtype)
                got_c = c.copy()
                want_c = c.copy()
                v_before = fg.v.copy()
                tf_before = fg.tf.copy()
                backend.unmqr(fg, got_c, transpose=transpose, workspace=ws)
                reference.unmqr(fg, want_c, transpose=transpose)
                factors_safe = np.array_equal(fg.v, v_before) and np.array_equal(
                    fg.tf, tf_before
                )
                _compare(
                    cases, backend.name, "UNMQR", f"{cfg} {tdir}",
                    [(got_c, want_c)], tol,
                    extra_ok=factors_safe,
                    note="" if factors_safe else "(factors corrupted)",
                )

                for kname, fe, fn, ref_fn in (
                    ("TSMQR", fe_ts, backend.tsmqr, reference.tsmqr),
                    ("TTMQR", fe_tt, backend.ttmqr, reference.ttmqr),
                ):
                    c1 = rng.standard_normal((b, width)).astype(dtype)
                    c2 = rng.standard_normal((b, width)).astype(dtype)
                    g1, g2 = c1.copy(), c2.copy()
                    w1, w2 = c1.copy(), c2.copy()
                    v2_before = fe.v2.copy()
                    fn(fe, g1, g2, transpose=transpose, workspace=ws)
                    ref_fn(fe, w1, w2, transpose=transpose)
                    factors_safe = np.array_equal(fe.v2, v2_before)
                    _compare(
                        cases, backend.name, kname, f"{cfg} {tdir}",
                        [(g1, w1), (g2, w2)], tol,
                        extra_ok=factors_safe,
                        note="" if factors_safe else "(factors corrupted)",
                    )

            # Batched variants over a 4-tile panel.
            panel = rng.standard_normal((b, 4 * b)).astype(dtype)
            gp, wp = panel.copy(), panel.copy()
            backend.unmqr_batch(fg, gp, workspace=ws)
            reference.unmqr_batch(fg, wp)
            _compare(cases, backend.name, "UNMQR_BATCH", cfg, [(gp, wp)], tol)
            for kname, fe, fn, ref_fn in (
                ("TSMQR_BATCH", fe_ts, backend.tsmqr_batch, reference.tsmqr_batch),
                ("TTMQR_BATCH", fe_tt, backend.ttmqr_batch, reference.ttmqr_batch),
            ):
                p1 = rng.standard_normal((b, 4 * b)).astype(dtype)
                p2 = rng.standard_normal((b, 4 * b)).astype(dtype)
                g1, g2 = p1.copy(), p2.copy()
                w1, w2 = p1.copy(), p2.copy()
                fn(fe, g1, g2, workspace=ws)
                ref_fn(fe, w1, w2)
                _compare(cases, backend.name, kname, cfg, [(g1, w1), (g2, w2)], tol)
    return cases


def check_end_to_end(backend, reference, n: int = 48, b: int = 8,
                     elimination: str = "TS") -> ConformanceCase:
    """Full serial factorization: bitwise R for bit-exact backends."""
    from ...runtime.serial import SerialRuntime

    a = _rng(n, b).standard_normal((n, n))
    r_ref = (
        SerialRuntime(elimination=elimination, backend=reference)
        .factorize(a.copy(), tile_size=b)
        .r_dense()
    )
    r_got = (
        SerialRuntime(elimination=elimination, backend=backend)
        .factorize(a.copy(), tile_size=b)
        .r_dense()
    )
    err = max_abs_diff(r_got, r_ref)
    if backend.bit_exact:
        ok = bool(np.array_equal(r_got, r_ref))
        tol = 0.0
        note = "" if ok else "(bit_exact backend: R differs bitwise)"
    else:
        tol = 1e-12 * max(1.0, float(np.abs(r_ref).max()))
        ok = bool(err <= tol)
        note = ""
    return ConformanceCase(
        backend=backend.name,
        kernel="END_TO_END",
        config=f"n={n} b={b} {elimination} float64",
        max_err=err,
        tol=tol,
        ok=ok,
        note=note,
    )


def run_conformance(
    backends=None,
    tile_sizes=DEFAULT_TILE_SIZES,
    dtypes=DEFAULT_DTYPES,
    end_to_end: bool = True,
) -> ConformanceReport:
    """Sweep every (or the named) registered backend against reference.

    The reference backend is included in the sweep — compared against
    itself it must come out bitwise clean, which keeps the harness
    honest about its own plumbing.
    """
    from . import DEFAULT_BACKEND, available_backends, get_backend

    reference = get_backend(DEFAULT_BACKEND)
    names = list(backends) if backends is not None else list(available_backends())
    report = ConformanceReport(backends=names)
    for name in names:
        backend = get_backend(name) if isinstance(name, str) else name
        report.cases.extend(
            check_kernels(backend, reference, tile_sizes=tile_sizes, dtypes=dtypes)
        )
        if end_to_end:
            report.cases.append(check_end_to_end(backend, reference))
            report.cases.append(
                check_end_to_end(backend, reference, elimination="TT")
            )
    return report
