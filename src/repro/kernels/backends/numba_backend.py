"""The ``numba`` backend: jitted factorization loops, graceful absence.

The factorization kernels (GEQRT/TSQRT/TTQRT) are interpreter-bound at
small tile sizes — per-column Python loops over ``b <= 32`` tiles spend
more time in bytecode dispatch than in arithmetic.  This backend
compiles those loops with :func:`numba.njit`.  The update kernels are
already single BLAS-3 calls, so they delegate to the reference
implementations — jitting them would only re-implement the GEMM.

Graceful degradation contract: when numba is not importable,
:func:`make_numba_backend` returns ``None`` and nothing is registered —
importing the package never fails for lack of the optional compiler.
The ``@_njit`` decorator then degrades to identity, which keeps every
kernel body executable as pure Python: the conformance tests exercise
the exact loops that would be compiled, so a numba-less CI leg still
validates the backend's *algorithm* (the with-numba leg validates the
compiled artifact).

Numerics: the loops mirror the LAPACK ``larfg`` convention of
:func:`repro.kernels.householder.make_reflector` exactly, but accumulate
dot products sequentially where NumPy uses (possibly pairwise/SIMD) BLAS
reductions.  Results therefore agree with the reference to rounding
(``~1e-15`` relative; the conformance bound is ``1e-12``) but not
bitwise — the backend declares ``bit_exact=False``.
"""

from __future__ import annotations

import math

import numpy as np

from ..geqrt import GEQRTResult
from ..tsqrt import TSQRTResult
from ..tsmqr import tsmqr as _ref_tsmqr
from ..ttmqr import ttmqr as _ref_ttmqr
from ..unmqr import unmqr as _ref_unmqr
from ..batched import (
    tsmqr_batch as _ref_tsmqr_batch,
    ttmqr_batch as _ref_ttmqr_batch,
    unmqr_batch as _ref_unmqr_batch,
)
from ...errors import KernelError

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken install
    _numba_njit = None
    HAVE_NUMBA = False


def _njit(fn):
    """``numba.njit(cache=True)`` when available, identity otherwise."""
    if HAVE_NUMBA:  # pragma: no cover - requires numba installed
        return _numba_njit(cache=True)(fn)
    return fn


# -- jitted (or pure-Python) kernel bodies ----------------------------------
# float64 only, plain loops and math.* — the numba-supported subset.


@_njit
def _geqrt_loop(r, v, taus):
    """In-place unblocked Householder QR of ``r``; fills ``v``/``taus``.

    Mirrors ``_factor_panel`` + ``make_reflector`` (larfg convention:
    ``beta = -copysign(||x||, x0)``, ``v[0] = 1``,
    ``tau = (beta - x0)/beta``).
    """
    m, n = r.shape
    for k in range(n):
        if k == m - 1:
            v[k, k] = 1.0
            taus[k] = 0.0
            continue
        alpha = r[k, k]
        sigma = 0.0
        for i in range(k + 1, m):
            sigma += r[i, k] * r[i, k]
        v[k, k] = 1.0
        if sigma == 0.0:
            taus[k] = 0.0
            continue
        norm_x = math.hypot(alpha, math.sqrt(sigma))
        beta = -norm_x if alpha >= 0.0 else norm_x
        denom = alpha - beta
        for i in range(k + 1, m):
            v[i, k] = r[i, k] / denom
        tau = (beta - alpha) / beta
        taus[k] = tau
        r[k, k] = beta
        for i in range(k + 1, m):
            r[i, k] = 0.0
        for j in range(k + 1, n):
            w = r[k, j]
            for i in range(k + 1, m):
                w += v[i, k] * r[i, j]
            w *= tau
            r[k, j] -= w
            for i in range(k + 1, m):
                r[i, j] -= v[i, k] * w
    return r


@_njit
def _t_factor_loop(v, taus):
    """Compact-WY ``Tf`` from explicit vectors (LAPACK ``larft``)."""
    m, k = v.shape
    tf = np.zeros((k, k), dtype=v.dtype)
    for i in range(k):
        tau = taus[i]
        tf[i, i] = tau
        if i > 0 and tau != 0.0:
            g = np.empty(i, dtype=v.dtype)
            for p in range(i):
                acc = 0.0
                for r in range(m):
                    acc += v[r, p] * v[r, i]
                g[p] = acc
            for p in range(i):
                acc = 0.0
                for q in range(p, i):
                    acc += tf[p, q] * g[q]
                tf[p, i] = -tau * acc
    return tf


@_njit
def _tsqrt_loop(r, bot, v2, taus, triangular_bottom):
    """Stacked ``[R1; A2]`` elimination loop (TS and TT variants)."""
    b = r.shape[1]
    m2 = bot.shape[0]
    for k in range(b):
        rows = min(k + 1, m2) if triangular_bottom else m2
        alpha = r[k, k]
        sigma = 0.0
        for i in range(rows):
            sigma += bot[i, k] * bot[i, k]
        if sigma == 0.0:
            taus[k] = 0.0
            for i in range(rows):
                bot[i, k] = 0.0
            continue
        norm_x = math.hypot(alpha, math.sqrt(sigma))
        beta = -norm_x if alpha >= 0.0 else norm_x
        denom = alpha - beta
        tau = (beta - alpha) / beta
        taus[k] = tau
        for i in range(rows):
            v2[i, k] = bot[i, k] / denom
            bot[i, k] = 0.0
        r[k, k] = beta
        for j in range(k + 1, b):
            w = r[k, j]
            for i in range(rows):
                w += v2[i, k] * bot[i, j]
            w *= tau
            r[k, j] -= w
            for i in range(rows):
                bot[i, j] -= v2[i, k] * w
    return r


@_njit
def _t_factor_stacked_loop(v2, taus):
    """``Tf`` for the structured ``V = [I; V2]`` stack.

    The identity block contributes ``delta(p, i)`` to the Gram matrix,
    which vanishes for the strictly-upper entries the recurrence reads.
    """
    m2, b = v2.shape
    tf = np.zeros((b, b), dtype=v2.dtype)
    for i in range(b):
        tau = taus[i]
        tf[i, i] = tau
        if i > 0 and tau != 0.0:
            g = np.empty(i, dtype=v2.dtype)
            for p in range(i):
                acc = 0.0
                for r in range(m2):
                    acc += v2[r, p] * v2[r, i]
                g[p] = acc
            for p in range(i):
                acc = 0.0
                for q in range(p, i):
                    acc += tf[p, q] * g[q]
                tf[p, i] = -tau * acc
    return tf


# -- python wrappers --------------------------------------------------------


def geqrt_numba(a: np.ndarray, inner_block: int | None = None) -> GEQRTResult:
    """Jitted GEQRT; non-float64 inputs delegate to the reference kernel.

    ``inner_block`` is validated for contract parity but otherwise
    ignored: the compiled loop is unblocked (compilation removes the
    interpreter overhead panel-blocking works around).
    """
    from .reference import REFERENCE_BACKEND

    a = np.asarray(a)
    if a.ndim != 2:
        raise KernelError(f"geqrt expects a 2-D tile, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise KernelError(f"geqrt requires m >= n, got shape {a.shape}")
    if inner_block is not None and inner_block < 1:
        raise KernelError(f"inner_block must be >= 1, got {inner_block}")
    if a.dtype != np.float64:
        return REFERENCE_BACKEND.geqrt(a, inner_block)
    r = np.array(a, dtype=np.float64, order="C", copy=True)
    v = np.zeros((m, n), dtype=np.float64)
    taus = np.zeros(n, dtype=np.float64)
    _geqrt_loop(r, v, taus)
    tf = _t_factor_loop(v, taus)
    return GEQRTResult(r=r, v=v, tf=tf, taus=taus)


def _stacked_numba(r1: np.ndarray, a2: np.ndarray, triangular_bottom: bool) -> TSQRTResult:
    from .reference import REFERENCE_BACKEND

    r1 = np.asarray(r1)
    a2 = np.asarray(a2)
    if r1.ndim != 2 or r1.shape[0] != r1.shape[1]:
        raise KernelError(f"top tile must be square, got shape {r1.shape}")
    if a2.ndim != 2 or a2.shape[1] != r1.shape[1]:
        raise KernelError(
            f"bottom tile of shape {a2.shape} incompatible with top tile {r1.shape}"
        )
    if triangular_bottom and a2.shape[0] != a2.shape[1]:
        raise KernelError(f"TT elimination needs a square bottom tile, got {a2.shape}")
    if r1.dtype != np.float64 or a2.dtype != np.float64:
        ref = REFERENCE_BACKEND.ttqrt if triangular_bottom else REFERENCE_BACKEND.tsqrt
        return ref(r1, a2)
    b = r1.shape[1]
    m2 = a2.shape[0]
    r = np.array(r1, dtype=np.float64, order="C", copy=True)
    # Same contract as the reference TT kernel: only the upper triangle
    # of a triangular bottom tile is data.
    bot = np.array(
        np.triu(a2) if triangular_bottom else a2,
        dtype=np.float64, order="C", copy=True,
    )
    v2 = np.zeros((m2, b), dtype=np.float64)
    taus = np.zeros(b, dtype=np.float64)
    _tsqrt_loop(r, bot, v2, taus, triangular_bottom)
    tf = _t_factor_stacked_loop(v2, taus)
    return TSQRTResult(
        r=r, v2=v2, tf=tf, taus=taus, kind="TT" if triangular_bottom else "TS"
    )


def tsqrt_numba(r1: np.ndarray, a2: np.ndarray) -> TSQRTResult:
    """Jitted TSQRT (see :func:`repro.kernels.tsqrt`)."""
    return _stacked_numba(r1, a2, triangular_bottom=False)


def ttqrt_numba(r1: np.ndarray, r2: np.ndarray) -> TSQRTResult:
    """Jitted TTQRT (see :func:`repro.kernels.ttqrt`)."""
    return _stacked_numba(r1, r2, triangular_bottom=True)


def make_numba_backend():
    """The ``numba`` backend, or ``None`` when numba is not importable."""
    if not HAVE_NUMBA:
        return None
    from . import FunctionBackend  # pragma: no cover - requires numba

    return FunctionBackend(  # pragma: no cover - requires numba
        name="numba",
        description="numba-jitted factorization loops; BLAS updates",
        geqrt=geqrt_numba,
        tsqrt=tsqrt_numba,
        ttqrt=ttqrt_numba,
        unmqr=_ref_unmqr,
        tsmqr=_ref_tsmqr,
        ttmqr=_ref_ttmqr,
        unmqr_batch=_ref_unmqr_batch,
        tsmqr_batch=_ref_tsmqr_batch,
        ttmqr_batch=_ref_ttmqr_batch,
        compiled=True,
        bit_exact=False,
    )
