"""GEQRT — the *triangulation* kernel (paper Sec. II-B step 1).

QR-factorizes a single tile ``A_t = Q_t R_t`` (Eq. 4) and replaces the
tile with ``R_t`` (Eq. 5).  The orthogonal factor is kept in compact form
(Householder vectors ``V`` + compact-WY ``Tf``) so the update kernels can
apply it cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from .householder import make_reflector, apply_reflector
from .blockreflector import build_t_factor, apply_block_reflector


@dataclass(frozen=True)
class GEQRTResult:
    """Factors produced by :func:`geqrt` for one tile.

    Attributes
    ----------
    r:
        ``(m, n)`` upper-triangular factor (this is what overwrites the
        tile in the tiled algorithm).
    v:
        ``(m, n)`` unit-lower-trapezoidal Householder vectors
        (``v[i, i] == 1``, zeros above the diagonal).
    tf:
        ``(n, n)`` upper-triangular compact-WY factor with
        ``Q = I - V Tf V.T``.
    taus:
        Length-``n`` reflector scalars (``tf``'s diagonal).
    """

    r: np.ndarray
    v: np.ndarray
    tf: np.ndarray
    taus: np.ndarray

    @property
    def tile_shape(self) -> tuple[int, int]:
        return self.r.shape

    def q_dense(self) -> np.ndarray:
        """Densify ``Q`` (tests/teaching only — ``O(m^2 n)``)."""
        m = self.v.shape[0]
        q = np.eye(m, dtype=self.v.dtype)
        apply_block_reflector(self.v, self.tf, q, transpose=False)
        return q


#: Tiles wider than this are factored panel-blocked by default.
_BLOCK_THRESHOLD = 48
_DEFAULT_INNER_BLOCK = 32


def _factor_panel(r: np.ndarray, v: np.ndarray, taus: np.ndarray, j0: int, j1: int) -> None:
    """Unblocked factorization of columns ``[j0, j1)``, updating only the
    panel's own trailing columns (the caller block-updates the rest)."""
    m, _n = r.shape
    for k in range(j0, j1):
        if k == m - 1:
            v[k, k] = 1.0
            taus[k] = 0.0
            continue
        refl = make_reflector(r[k:, k])
        taus[k] = refl.tau
        v[k:, k] = refl.v
        r[k, k] = refl.beta
        r[k + 1 :, k] = 0.0
        if k + 1 < j1:
            apply_reflector(refl, r[k:, k + 1 : j1])


def geqrt(a: np.ndarray, inner_block: int | None = None) -> GEQRTResult:
    """Householder-QR-factorize a tile, returning compact factors.

    Parameters
    ----------
    a:
        ``(m, n)`` tile with ``m >= n`` (square ``b x b`` in the paper).
        Not modified; the caller replaces the tile with ``result.r``.
    inner_block:
        Panel width for the blocked algorithm.  ``None`` picks
        automatically (unblocked for narrow tiles, 32-column panels for
        wide ones); pass ``1`` to force the textbook unblocked loop.

    Returns
    -------
    GEQRTResult

    Notes
    -----
    The blocked variant computes *identical* reflectors: panels are
    factored column by column, but each panel's trailing update is one
    compact-WY application (three GEMMs) instead of per-column rank-1
    updates — the standard LAPACK ``geqrf`` structure, worth several x
    on wide tiles where Python-loop overhead dominates.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise KernelError(f"geqrt expects a 2-D tile, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise KernelError(f"geqrt requires m >= n, got shape {a.shape}")
    if inner_block is None:
        ib = _DEFAULT_INNER_BLOCK if n > _BLOCK_THRESHOLD else n
    else:
        if inner_block < 1:
            raise KernelError(f"inner_block must be >= 1, got {inner_block}")
        ib = inner_block

    if a.dtype.kind != "f":
        r = a.astype(np.float64)  # the dtype conversion is already a copy
    else:
        r = a.copy()
    v = np.zeros((m, n), dtype=r.dtype)
    taus = np.zeros(n, dtype=r.dtype)
    for j0 in range(0, n, ib):
        j1 = min(j0 + ib, n)
        _factor_panel(r, v, taus, j0, j1)
        if j1 < n:
            panel_v = v[j0:, j0:j1]
            panel_tf = build_t_factor(panel_v, taus[j0:j1])
            apply_block_reflector(panel_v, panel_tf, r[j0:, j1:], transpose=True)
    tf = build_t_factor(v, taus)
    return GEQRTResult(r=r, v=v, tf=tf, taus=taus)
