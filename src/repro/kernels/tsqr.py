"""TSQR — communication-avoiding tall-skinny QR (paper refs. [12, 13]).

The paper's related work contrasts its column distribution with
communication-avoiding QR, which splits a tall matrix into *row* blocks,
factorizes each locally, and merges the small R factors up a binary
tree.  This is the numeric kernel of that approach, built entirely from
this package's GEQRT/TTQRT machinery; the scheduling comparison lives in
:mod:`repro.sim.rowblock` / :mod:`repro.experiments.caqr_comparison`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import KernelError
from .blockreflector import apply_block_reflector
from .geqrt import GEQRTResult, geqrt
from .tsqrt import TSQRTResult
from .ttqrt import ttqrt


@dataclass
class TSQRResult:
    """Implicit factors of a tall-skinny QR via tree reduction.

    Attributes
    ----------
    r:
        ``(n, n)`` final upper-triangular factor.
    row_blocks:
        ``(start, stop)`` row range of each local block.
    local:
        Per-block GEQRT factors.
    tree:
        Merge steps ``(dst_block, src_block, factors)`` in application
        order: each TTQRT folded block ``src``'s R into block ``dst``'s.
    shape:
        Original matrix shape ``(m, n)``.
    """

    r: np.ndarray
    row_blocks: list[tuple[int, int]]
    local: list[GEQRTResult]
    tree: list[tuple[int, int, TSQRTResult]] = field(default_factory=list)
    shape: tuple[int, int] = (0, 0)

    # -- implicit application ------------------------------------------------

    def apply_qt(self, x: np.ndarray) -> np.ndarray:
        """``Q^T @ x`` using the local factors then the merge tree."""
        work, squeeze = self._as_work(x)
        n = self.shape[1]
        for (start, stop), f in zip(self.row_blocks, self.local):
            apply_block_reflector(f.v, f.tf, work[start:stop], transpose=True)
        for dst, src, f in self.tree:
            top = self._head(dst, n)
            bot = self._head(src, n)
            self._apply_merge(f, work, top, bot, transpose=True)
        return work[:, 0] if squeeze else work

    def apply_q(self, x: np.ndarray) -> np.ndarray:
        """``Q @ x`` — the reverse-order application."""
        work, squeeze = self._as_work(x)
        n = self.shape[1]
        for dst, src, f in reversed(self.tree):
            self._apply_merge(f, work, self._head(dst, n), self._head(src, n), transpose=False)
        for (start, stop), f in zip(self.row_blocks, self.local):
            apply_block_reflector(f.v, f.tf, work[start:stop], transpose=False)
        return work[:, 0] if squeeze else work

    def q_dense(self) -> np.ndarray:
        """Leading ``m x n`` orthonormal columns of ``Q``."""
        m, n = self.shape
        eye = np.zeros((m, n), dtype=self.r.dtype)
        np.fill_diagonal(eye, 1.0)
        return self.apply_q(eye)

    # -- helpers ---------------------------------------------------------------

    def _as_work(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=self.r.dtype)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.shape[0]:
            raise KernelError(
                f"expected {self.shape[0]} rows, got array of shape {x.shape}"
            )
        return x.copy(), squeeze

    def _head(self, block: int, n: int) -> slice:
        start, _stop = self.row_blocks[block]
        return slice(start, start + n)

    @staticmethod
    def _apply_merge(
        f: TSQRTResult, work: np.ndarray, top: slice, bot: slice, transpose: bool
    ) -> None:
        v2 = f.v2
        tf = f.tf.T if transpose else f.tf
        w = work[top] + v2.T @ work[bot]
        w = tf @ w
        work[top] -= w
        work[bot] -= v2 @ w


def tsqr(a: np.ndarray, num_blocks: int | None = None) -> TSQRResult:
    """Tall-skinny QR by local factorization + binary R-merge tree.

    Parameters
    ----------
    a:
        ``(m, n)`` with ``m >= n`` (typically ``m >> n``).
    num_blocks:
        Row blocks (the "processors" of CA-QR); defaults to
        ``max(1, m // (2 n))`` and is clipped so each block keeps at
        least ``n`` rows.

    Returns
    -------
    TSQRResult
        With ``a ~= result.q_dense() @ result.r``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise KernelError(f"tsqr expects a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise KernelError(f"tsqr requires m >= n, got {a.shape}")
    if n == 0:
        raise KernelError("tsqr needs at least one column")
    max_blocks = max(1, m // n)
    p = num_blocks if num_blocks is not None else max(1, m // (2 * n))
    if p < 1:
        raise KernelError(f"num_blocks must be >= 1, got {p}")
    p = min(p, max_blocks)

    # Row ranges: even split with the remainder spread over early blocks.
    base, rem = divmod(m, p)
    blocks: list[tuple[int, int]] = []
    start = 0
    for i in range(p):
        stop = start + base + (1 if i < rem else 0)
        blocks.append((start, stop))
        start = stop

    local: list[GEQRTResult] = []
    rs: list[np.ndarray] = []
    for b0, b1 in blocks:
        f = geqrt(a[b0:b1])
        local.append(f)
        rs.append(np.triu(f.r[:n]))

    tree: list[tuple[int, int, TSQRTResult]] = []
    dist = 1
    while dist < p:
        for dst in range(0, p - dist, 2 * dist):
            src = dst + dist
            f = ttqrt(rs[dst], rs[src])
            rs[dst] = f.r
            tree.append((dst, src, f))
        dist *= 2

    return TSQRResult(
        r=rs[0], row_blocks=blocks, local=local, tree=tree, shape=(m, n)
    )
