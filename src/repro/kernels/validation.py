"""Numerical validation helpers shared by tests and examples."""

from __future__ import annotations

import numpy as np

from ..config import reconstruction_rtol
from ..utils import frobenius_relative_error, is_upper_triangular, orthogonality_error


def check_reconstruction(
    a: np.ndarray, q: np.ndarray, r: np.ndarray, rtol: float | None = None
) -> float:
    """Assert ``A ~= Q R`` and return the relative Frobenius error."""
    err = frobenius_relative_error(q @ r, a)
    tol = rtol if rtol is not None else reconstruction_rtol(np.asarray(a).dtype)
    if err > tol:
        raise AssertionError(f"reconstruction error {err:.3e} exceeds tolerance {tol:.1e}")
    return err


def check_orthogonality(q: np.ndarray, rtol: float | None = None) -> float:
    """Assert ``Q^T Q ~= I`` and return ``||Q^T Q - I||_F``."""
    err = orthogonality_error(q)
    n = np.asarray(q).shape[1]
    tol = (rtol if rtol is not None else reconstruction_rtol(np.asarray(q).dtype)) * max(n, 1)
    if err > tol:
        raise AssertionError(f"orthogonality error {err:.3e} exceeds tolerance {tol:.1e}")
    return err


def check_upper_triangular(r: np.ndarray, atol: float = 1e-12) -> None:
    """Assert ``R`` has (numerically) zero strictly-lower triangle."""
    scale = float(np.max(np.abs(r))) or 1.0
    if not is_upper_triangular(r, atol=atol * scale):
        worst = float(np.max(np.abs(np.tril(np.asarray(r), k=-1))))
        raise AssertionError(
            f"matrix is not upper triangular: max |lower| = {worst:.3e} "
            f"(tolerance {atol * scale:.3e})"
        )
