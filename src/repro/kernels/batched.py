"""Batched row-panel update kernels — many tiles per reflector factor.

The update kernels (UNMQR/TSMQR) dominate tiled-QR runtime (paper
Fig. 4): every GEQRT/TSQRT factor of panel ``k`` must be applied to all
``q-k-1`` trailing tiles of its row (pair).  Applying them one tile at a
time costs one Python kernel call plus fresh GEMM temporaries per tile,
which at small tile sizes buries the BLAS under interpreter and
allocator overhead.

The batched kernels apply one factor to a *horizontally stacked row
panel* ``C = [C_{k+1} | ... | C_{q-1}]`` of shape ``(b, (q-k-1)*b)`` in
the same three GEMMs the per-tile kernel uses — just ``q-k-1`` times
wider.  Column ``j`` of a GEMM result depends only on column ``j`` of
the right-hand operand, so the batched result is tile-for-tile the same
arithmetic as the per-tile loop (Buttari et al. and Agullo et al. obtain
their multicore performance from exactly this fusion).

:class:`~repro.tiles.TiledMatrix.row_panel` provides the panel views
(zero-copy in row-major storage mode); :mod:`repro.runtime.core_exec`
drives these kernels for the coarsened ``UNMQR_BATCH`` /
``TSMQR_BATCH`` / ``TTMQR_BATCH`` DAG tasks.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .blockreflector import apply_block_reflector
from .geqrt import GEQRTResult
from .tsmqr import tsmqr
from .tsqrt import TSQRTResult
from .workspace import Workspace


def unmqr_batch(
    factors: GEQRTResult,
    panel: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Apply one GEQRT factor to a whole row panel, in place.

    Parameters
    ----------
    factors:
        Compact factors from :func:`repro.kernels.geqrt`.
    panel:
        ``(m, w*b)`` horizontal stack of the ``w`` tiles to update;
        ``m`` must equal the factored tile's row count.  Updated in
        place and returned.
    transpose, workspace:
        As in :func:`repro.kernels.unmqr`.

    Notes
    -----
    Tile ``j`` of the panel receives exactly the arithmetic the per-tile
    :func:`~repro.kernels.unmqr` would apply — the fusion changes GEMM
    width, not the computation (property-tested to ``1e-12``).
    """
    panel = np.asarray(panel)
    if panel.ndim != 2 or panel.shape[0] != factors.v.shape[0]:
        raise KernelError(
            f"unmqr_batch: panel of shape {panel.shape} incompatible with "
            f"factors of shape {factors.v.shape}"
        )
    return apply_block_reflector(
        factors.v, factors.tf, panel, transpose=transpose, workspace=workspace
    )


def tsmqr_batch(
    factors: TSQRTResult,
    panel1: np.ndarray,
    panel2: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one TSQRT/TTQRT factor to a stacked pair of row panels.

    Parameters
    ----------
    factors:
        Output of :func:`repro.kernels.tsqrt` or :func:`repro.kernels.ttqrt`
        (both kinds share this application — the triangular TT ``V2``
        only changes the achievable flop rate, not the algebra).
    panel1:
        ``(b, w*b)`` stack of the ``w`` tiles in the factor's *top* row.
        Updated in place.
    panel2:
        ``(m2, w*b)`` stack of the matching tiles in the eliminated
        (bottom) row.  Updated in place.
    transpose, workspace:
        As in :func:`repro.kernels.tsmqr`.

    Returns
    -------
    tuple
        ``(panel1, panel2)`` — the same arrays, updated.
    """
    panel1 = np.asarray(panel1)
    panel2 = np.asarray(panel2)
    if panel1.ndim != 2 or panel2.ndim != 2 or panel1.shape[1] != panel2.shape[1]:
        raise KernelError(
            f"tsmqr_batch: panel widths differ or not 2-D: "
            f"{panel1.shape} vs {panel2.shape}"
        )
    return tsmqr(factors, panel1, panel2, transpose=transpose, workspace=workspace)


def ttmqr_batch(
    factors: TSQRTResult,
    panel1: np.ndarray,
    panel2: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one TTQRT factor to a stacked pair of row panels.

    The TT counterpart of :func:`tsmqr_batch`: numerically the same
    application (only ``V2``/``Tf`` are seen), kept as a named entry
    point so backends can specialize the triangular-``V2`` case and so
    the ``TTMQR_BATCH`` DAG tasks have a first-class kernel.
    """
    if factors.kind != "TT":
        raise KernelError(f"ttmqr_batch requires TT factors, got kind={factors.kind!r}")
    return tsmqr_batch(factors, panel1, panel2, transpose=transpose, workspace=workspace)
