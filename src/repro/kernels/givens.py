"""Givens rotations and QR factor updating/downdating.

Householder reflectors (the paper's workhorse) zero whole column tails;
Givens rotations zero one entry at a time, which makes them the right
tool for *updating* an existing factorization when rows arrive or leave
— the streaming-data counterpart of the paper's "data analysis" use
case.  All from scratch: no LAPACK ``rot``/``rotg``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError


@dataclass(frozen=True)
class GivensRotation:
    """A 2x2 rotation ``[[c, s], [-s, c]]`` zeroing one component.

    Applying it to rows ``(i, j)`` of a matrix sends
    ``(a_i, a_j) -> (c a_i + s a_j, -s a_i + c a_j)``.
    """

    c: float
    s: float
    r: float  # the resulting nonzero: r = hypot(a, b)

    def apply_rows(self, m: np.ndarray, i: int, j: int) -> None:
        """Rotate rows ``i`` and ``j`` of ``m`` in place."""
        top = self.c * m[i] + self.s * m[j]
        m[j] = -self.s * m[i] + self.c * m[j]
        m[i] = top


def make_givens(a: float, b: float) -> GivensRotation:
    """Rotation with ``[[c, s], [-s, c]] @ [a, b] == [r, 0]``.

    Numerically safe continuous-scaling construction (no overflow in
    the intermediate squares).
    """
    if b == 0.0:
        return GivensRotation(c=1.0, s=0.0, r=float(a))
    if a == 0.0:
        return GivensRotation(c=0.0, s=1.0, r=float(b))
    # Scale out the magnitude first so subnormal/huge inputs keep the
    # rotation exactly orthonormal (dividing two subnormals loses bits).
    scale = max(abs(a), abs(b))
    a1, b1 = a / scale, b / scale
    r1 = float(np.hypot(a1, b1))
    return GivensRotation(c=a1 / r1, s=b1 / r1, r=r1 * scale)


def qr_insert_row(
    r: np.ndarray, row: np.ndarray
) -> tuple[np.ndarray, list[tuple[int, GivensRotation]]]:
    """Update an ``n x n`` R factor after appending one row to ``A``.

    Given ``A = Q R`` and a new row ``v``, the stacked ``[R; v]`` is
    re-triangularized by ``n`` Givens rotations; the returned R is the
    factor of the extended matrix (the rotations are returned so a
    caller tracking ``Q^T b`` can replay them).

    Parameters
    ----------
    r:
        Current upper-triangular factor (not modified).
    row:
        The appended data row, length ``n``.
    """
    r = np.asarray(r, dtype=np.float64)
    row = np.asarray(row, dtype=np.float64)
    n = r.shape[1]
    if r.ndim != 2 or r.shape[0] != n:
        raise KernelError(f"R must be square n x n, got {r.shape}")
    if row.shape != (n,):
        raise KernelError(f"row must have length {n}, got {row.shape}")
    work = np.vstack([np.triu(r), row[None, :]])
    rotations: list[tuple[int, GivensRotation]] = []
    for k in range(n):
        g = make_givens(work[k, k], work[n, k])
        g.apply_rows(work, k, n)
        work[n, k] = 0.0
        rotations.append((k, g))
    return np.triu(work[:n]), rotations


def qr_delete_row(
    r: np.ndarray, removed_row: np.ndarray
) -> tuple[np.ndarray, list[tuple[int, GivensRotation]]]:
    """Downdate an R factor after removing one data row from ``A``.

    Golub & Van Loan downdating: with ``A = QR`` and a removed row
    ``v``, solve ``R^T w = v``, require ``rho^2 = 1 - w^T w > 0`` (the
    remaining matrix must stay full rank), then rotate the vector
    ``[w; rho]`` onto ``e_{n+1}`` with Givens rotations in the
    ``(k, n+1)`` planes; dragging ``[R; 0]`` through the same rotations
    leaves the downdated ``R`` on top (and reconstructs ``v`` in the
    discarded last row).

    Parameters
    ----------
    r:
        Current ``n x n`` upper-triangular factor.
    removed_row:
        The data row being removed (length ``n``).

    Returns
    -------
    (r_new, rotations)

    Raises
    ------
    numpy.linalg.LinAlgError
        If the downdate is numerically impossible (the row carries all
        the remaining rank in some direction).
    """
    r = np.asarray(r, dtype=np.float64)
    v = np.asarray(removed_row, dtype=np.float64)
    n = r.shape[1]
    if r.ndim != 2 or r.shape[0] != n:
        raise KernelError(f"R must be square n x n, got {r.shape}")
    if v.shape != (n,):
        raise KernelError(f"removed row must have length {n}, got {v.shape}")
    rt = np.triu(r).T  # lower triangular
    # Forward-substitute R^T w = v.
    w = np.zeros(n)
    for i in range(n):
        d = rt[i, i]
        if d == 0.0:
            raise np.linalg.LinAlgError("R is singular; cannot downdate")
        w[i] = (v[i] - rt[i, :i] @ w[:i]) / d
    rho_sq = 1.0 - float(w @ w)
    if rho_sq <= 0.0:
        raise np.linalg.LinAlgError(
            "downdate would make the factor indefinite (row carries "
            "remaining rank)"
        )
    u = np.concatenate([w, [np.sqrt(rho_sq)]])
    work = np.vstack([np.triu(r), np.zeros((1, n))])
    rotations: list[tuple[int, GivensRotation]] = []
    for k in range(n - 1, -1, -1):
        if u[k] == 0.0:
            continue
        g = make_givens(u[n], u[k])
        # Rotate u[k] into u[n] and drag the matrix rows along.
        new_last = g.c * u[n] + g.s * u[k]
        u[k] = 0.0
        u[n] = new_last
        g.apply_rows(work, n, k)
        rotations.append((k, g))
    return np.triu(work[:n]), rotations
