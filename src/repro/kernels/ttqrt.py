"""TTQRT — triangle-on-top-of-*triangle* elimination (paper Sec. II-B).

Identical contract to :func:`repro.kernels.tsqrt` but the bottom tile is
itself already triangulated (upper triangular), which the kernel exploits:
column ``k``'s reflector only involves rows ``0..k`` of the bottom tile,
halving the arithmetic.  The paper notes both variants perform the same
*amount* of elimination work per tile pair; TT is what tree-reduction
elimination orders use.
"""

from __future__ import annotations

import numpy as np

from .tsqrt import TSQRTResult, _stacked_factor


def ttqrt(r1: np.ndarray, r2: np.ndarray) -> TSQRTResult:
    """Eliminate an upper-triangular tile ``r2`` against ``r1``.

    Parameters
    ----------
    r1:
        ``(b, b)`` upper-triangular diagonal tile.
    r2:
        ``(b, b)`` upper-triangular tile in the same tile column (the
        output of a previous GEQRT/TTQRT), to be zeroed.

    Returns
    -------
    repro.kernels.tsqrt.TSQRTResult
        With ``kind == "TT"`` and upper-triangular ``v2``.
    """
    r2 = np.asarray(r2)
    # Only the upper triangle of r2 is data; enforce the contract so
    # stray garbage below the diagonal cannot leak into the factors.
    return _stacked_factor(r1, np.triu(r2), triangular_bottom=True)
