"""UNMQR — the *update for triangulation* kernel (paper Sec. II-B step 2).

After GEQRT factorizes the diagonal tile of a column, every tile to its
right in the same tile row must be hit with ``Q_t^T`` (the paper writes the
update as ``A_t <- Q_t A_t`` in Eq. 6 with ``Q_t`` the transforming factor;
in the compact-WY convention used here that operator is
``Q^T = I - V Tf^T V^T``).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .geqrt import GEQRTResult
from .blockreflector import apply_block_reflector
from .workspace import Workspace


def unmqr(
    factors: GEQRTResult,
    c: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Apply a GEQRT tile's orthogonal factor to another tile, in place.

    Parameters
    ----------
    factors:
        Compact factors from :func:`repro.kernels.geqrt`.
    c:
        ``(m, n)`` tile to update; ``m`` must equal the factored tile's
        row count.  Modified in place and returned.  ``n`` may span
        several horizontally stacked tiles (the batched-update path).
    transpose:
        ``True`` (default) applies ``Q^T`` — the factorization direction
        used during the decomposition.  ``False`` applies ``Q`` — used
        when explicitly building the orthogonal factor.
    workspace:
        Scratch arena for the GEMM temporaries (thread-local default).
    """
    c = np.asarray(c)
    if c.ndim != 2 or c.shape[0] != factors.v.shape[0]:
        raise KernelError(
            f"unmqr: tile of shape {c.shape} incompatible with factors of "
            f"shape {factors.v.shape}"
        )
    return apply_block_reflector(
        factors.v, factors.tf, c, transpose=transpose, workspace=workspace
    )
