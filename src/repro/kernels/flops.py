"""Floating-point operation models for the tile kernels.

These are the standard PLASMA/LAPACK working-note counts, used by the
analysis layer (utilization, achieved GFLOP/s) and as sanity anchors for
the device timing models.  ``b`` is the square tile edge; ``nb`` the
number of columns a kernel updates.
"""

from __future__ import annotations


def flops_geqrt(b: int) -> float:
    """QR of a ``b x b`` tile plus the compact-WY ``Tf`` accumulation.

    ``~ 4/3 b^3`` for the factorization + ``~ 1/3 b^3`` for ``Tf``.
    """
    return (4.0 / 3.0) * b**3 + (1.0 / 3.0) * b**3


def flops_unmqr(b: int) -> float:
    """Apply a GEQRT factor to one ``b x b`` tile: three GEMM-ish products.

    ``W = V^T C`` (~``b^3`` with unit-lower V), ``Tf W`` (triangular,
    ``~b^3``), ``C -= V W`` (~``b^3``); each product counts 2 flops/entry.
    """
    return 4.0 * b**3


def flops_tsqrt(b: int) -> float:
    """Eliminate a dense tile against a triangular one: ``~2 b^3``."""
    return 2.0 * b**3 + (1.0 / 3.0) * b**3  # + Tf accumulation


def flops_tsmqr(b: int) -> float:
    """Apply a TS factor to a stacked pair: three dense ``b^3`` GEMMs."""
    return 6.0 * b**3


def flops_ttqrt(b: int) -> float:
    """TT elimination touches only the triangular half: ``~ b^3``."""
    return 1.0 * b**3 + (1.0 / 3.0) * b**3


def flops_ttmqr(b: int) -> float:
    """TT update: the triangular ``V2`` halves two of the three GEMMs."""
    return 4.0 * b**3


def flops_unmqr_batch(b: int, ncols: int) -> float:
    """One UNMQR_BATCH over ``ncols`` stacked tiles.

    Fusion widens the GEMMs but performs the identical arithmetic, so
    the count is exactly ``ncols`` per-tile applications.
    """
    return ncols * flops_unmqr(b)


def flops_tsmqr_batch(b: int, ncols: int) -> float:
    """One TSMQR_BATCH over ``ncols`` stacked tile pairs."""
    return ncols * flops_tsmqr(b)


def flops_ttmqr_batch(b: int, ncols: int) -> float:
    """One TTMQR_BATCH over ``ncols`` stacked tile pairs."""
    return ncols * flops_ttmqr(b)


def flops_dense_qr(n: int, m: int | None = None) -> float:
    """Householder QR of an ``m x n`` dense matrix (``m >= n``).

    ``2 m n^2 - 2/3 n^3``; for square matrices ``4/3 n^3``.
    """
    if m is None:
        m = n
    return 2.0 * m * n**2 - (2.0 / 3.0) * n**3


def flops_orgqr(p: int, q: int, b: int) -> float:
    """Building the full ``Q`` from a flat-tree tiled factorization.

    Every logged reflector (one GEQRT per panel, ``p-k-1`` eliminations)
    is applied to all ``p`` tile columns of the identity: per panel ``k``
    that is ``p`` UNMQR applications plus ``(p-k-1) * p`` TSMQR pair
    applications.
    """
    total = 0.0
    for k in range(min(p, q)):
        total += p * flops_unmqr(b)
        total += (p - k - 1) * p * flops_tsmqr(b)
    return total


def flops_tiled_qr(p: int, q: int, b: int, elimination: str = "TS") -> float:
    """Total flops of tiled QR on a ``p x q`` grid of ``b x b`` tiles.

    Sums the kernel counts over the algorithm's loop nest: for panel
    ``k``: one GEQRT, ``q-k-1`` UNMQRs, ``p-k-1`` eliminations each with
    ``q-k-1`` updates.

    Parameters
    ----------
    p, q:
        Tile-grid rows and columns.
    b:
        Tile edge.
    elimination:
        An elimination-tree name or alias (:mod:`repro.dag.trees`).
        ``"flat"``/``"TS"`` prices TSQRT/TSMQR merges; every TT-style
        tree (``"binary"``/``"TT"``, ``"flat-tt"``, ``"fibonacci"``,
        ``"greedy"``) prices TTQRT/TTMQR — the merge count is the same
        for all trees, only the per-pair constants differ.
    """
    from ..dag.trees import resolve_tree
    from ..errors import DAGError

    try:
        tree = resolve_tree(elimination)
    except DAGError as exc:
        raise ValueError(str(exc)) from None
    if tree.uses_tt:
        f_e, f_ue = flops_ttqrt(b), flops_ttmqr(b)
    else:
        f_e, f_ue = flops_tsqrt(b), flops_tsmqr(b)
    total = 0.0
    for k in range(min(p, q)):
        rows = p - k - 1
        cols = q - k - 1
        total += flops_geqrt(b)
        total += cols * flops_unmqr(b)
        total += rows * f_e
        total += rows * cols * f_ue
    return total
