"""TSMQR — the *update for elimination* kernel (paper Sec. II-B step 4).

After TSQRT/TTQRT eliminates a tile pair, every tile pair to the right in
the same two tile rows must be hit with the pair's orthogonal factor
(Eq. 9).  With ``V = [I; V2]`` the block-reflector application decomposes
into three small GEMMs:

    W  = C1 + V2^T C2
    W' = op(Tf) W
    C1 -= W'
    C2 -= V2 W'

This single routine serves both the TS and TT kinds (TTMQR in
:mod:`repro.kernels.ttmqr` is a thin structured wrapper).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .tsqrt import TSQRTResult
from .workspace import Workspace, thread_workspace


def tsmqr(
    factors: TSQRTResult,
    c1: np.ndarray,
    c2: np.ndarray,
    transpose: bool = True,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a TSQRT/TTQRT orthogonal factor to a stacked tile pair.

    Parameters
    ----------
    factors:
        Output of :func:`repro.kernels.tsqrt` or :func:`repro.kernels.ttqrt`.
    c1:
        ``(b, n)`` tile in the diagonal tile's row.  Updated in place.
        ``n`` may span several stacked tiles — this routine *is* the
        batched kernel when handed a row panel.
    c2:
        ``(m2, n)`` tile in the eliminated tile's row.  Updated in place.
    transpose:
        ``True`` (default) applies ``Q^T`` (factorization direction),
        ``False`` applies ``Q`` (Q-building direction).
    workspace:
        Scratch arena for the three GEMMs; the caller's thread-local
        default when omitted, so no temporaries are heap-allocated per
        call on the hot path.

    Returns
    -------
    tuple
        ``(c1, c2)`` — the same arrays, updated.
    """
    c1 = np.asarray(c1)
    c2 = np.asarray(c2)
    v2 = factors.v2
    b = factors.r.shape[0]
    if c1.ndim != 2 or c1.shape[0] != b:
        raise KernelError(f"c1 must have {b} rows, got shape {c1.shape}")
    if c2.ndim != 2 or c2.shape[0] != v2.shape[0]:
        raise KernelError(f"c2 must have {v2.shape[0]} rows, got shape {c2.shape}")
    if c1.shape[1] != c2.shape[1]:
        raise KernelError(
            f"c1/c2 column counts differ: {c1.shape[1]} vs {c2.shape[1]}"
        )
    tf = factors.tf.T if transpose else factors.tf
    ws = workspace if workspace is not None else thread_workspace()
    if c1.dtype != c2.dtype or v2.dtype != c1.dtype or tf.dtype != c1.dtype:
        # Mixed dtypes (tests only): matmul-out scratch would mismatch
        # the promoted result dtype, so fall back to allocating GEMMs.
        # Counted so the hot path can prove it never lands here.
        ws.note_fallback()
        w = c1 + v2.T @ c2
        w = tf @ w
        c1 -= w
        c2 -= v2 @ w
        return c1, c2
    n = c1.shape[1]
    w = ws.temp("tsmqr.w", (b, n), c1.dtype)
    np.matmul(v2.T, c2, out=w)
    w += c1
    w2 = ws.temp("tsmqr.w2", (b, n), c1.dtype)
    np.matmul(tf, w, out=w2)
    np.subtract(c1, w2, out=c1)
    vw = ws.temp("tsmqr.vw", c2.shape, c2.dtype)
    np.matmul(v2, w2, out=vw)
    np.subtract(c2, vw, out=c2)
    return c1, c2
