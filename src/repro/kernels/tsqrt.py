"""TSQRT — the *elimination* kernel (paper Sec. II-B step 3, TS variant).

Factorizes a stacked pair of same-column tiles

    [ R1 ]          [ R'1 ]
    [    ]  =  Q *  [     ]          (Eqs. 7-8)
    [ A2 ]          [  0  ]

where ``R1`` is the already-triangulated diagonal tile and ``A2`` a dense
("square") tile below it.  The Householder vectors have the structure
``V = [I; V2]``: the top block is implicitly the identity, so only the
dense ``V2`` is stored.  The paper's TT ("triangle on top of triangle")
variant lives in :mod:`repro.kernels.ttqrt` and shares this machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from .blockreflector import build_t_factor
from .householder import make_reflector


@dataclass(frozen=True)
class TSQRTResult:
    """Factors produced by :func:`tsqrt` / :func:`repro.kernels.ttqrt`.

    Attributes
    ----------
    r:
        ``(b, b)`` updated upper-triangular top tile (replaces ``R1``).
    v2:
        ``(m2, b)`` bottom parts of the Householder vectors (the top parts
        are implicitly the identity).  Upper triangular for the TT kind.
    tf:
        ``(b, b)`` compact-WY factor for ``Q = I - V Tf V.T`` with
        ``V = [I; V2]``.
    taus:
        Length-``b`` reflector scalars.
    kind:
        ``"TS"`` (dense bottom tile) or ``"TT"`` (triangular bottom tile).
    """

    r: np.ndarray
    v2: np.ndarray
    tf: np.ndarray
    taus: np.ndarray
    kind: str = "TS"

    def q_dense(self) -> np.ndarray:
        """Densify the stacked ``Q`` (tests/teaching only)."""
        b = self.r.shape[0]
        m2 = self.v2.shape[0]
        v = np.vstack([np.eye(b, dtype=self.v2.dtype), self.v2])
        q = np.eye(b + m2, dtype=self.v2.dtype)
        w = self.tf @ (v.T @ q)
        q -= v @ w
        return q


def _stacked_factor(r1: np.ndarray, a2: np.ndarray, triangular_bottom: bool) -> TSQRTResult:
    """Shared TS/TT factorization body.

    For TT, column ``k``'s bottom vector only touches rows ``0..k`` of the
    (upper-triangular) bottom tile, which the loop exploits to keep the
    flop count at roughly half the TS cost.
    """
    r1 = np.asarray(r1)
    a2 = np.asarray(a2)
    if r1.ndim != 2 or r1.shape[0] != r1.shape[1]:
        raise KernelError(f"top tile must be square, got shape {r1.shape}")
    if a2.ndim != 2 or a2.shape[1] != r1.shape[1]:
        raise KernelError(
            f"bottom tile of shape {a2.shape} incompatible with top tile {r1.shape}"
        )
    if triangular_bottom and a2.shape[0] != a2.shape[1]:
        raise KernelError(f"TT elimination needs a square bottom tile, got {a2.shape}")
    if r1.dtype.kind == "f" and a2.dtype.kind == "f":
        dtype = np.result_type(r1.dtype, a2.dtype)  # preserves float32
    else:
        dtype = np.result_type(r1.dtype, a2.dtype, np.float64)
    b = r1.shape[1]
    m2 = a2.shape[0]

    r = np.asarray(r1, dtype=dtype).copy()
    bot = np.asarray(a2, dtype=dtype).copy()
    v2 = np.zeros((m2, b), dtype=dtype)
    taus = np.zeros(b, dtype=dtype)

    for k in range(b):
        # Rows of the bottom tile this column's reflector may touch.
        rows = slice(0, min(k + 1, m2)) if triangular_bottom else slice(0, m2)
        x = np.concatenate(([r[k, k]], bot[rows, k]))
        refl = make_reflector(x)
        taus[k] = refl.tau
        z = refl.v[1:]
        v2[rows, k] = z
        r[k, k] = refl.beta
        bot[rows, k] = 0.0
        if refl.tau != 0.0 and k + 1 < b:
            # w_j = R[k, j] + z^T bot[:, j]; subtract tau * w from both parts.
            w = r[k, k + 1 :] + z @ bot[rows, k + 1 :]
            w *= refl.tau
            r[k, k + 1 :] -= w
            bot[rows, k + 1 :] -= np.outer(z, w)

    v_full = np.vstack([np.eye(b, dtype=dtype), v2])
    tf = build_t_factor(v_full, taus)
    return TSQRTResult(r=r, v2=v2, tf=tf, taus=taus, kind="TT" if triangular_bottom else "TS")


def tsqrt(r1: np.ndarray, a2: np.ndarray) -> TSQRTResult:
    """Triangle-on-top-of-*square* elimination (PLASMA's TSQRT).

    Parameters
    ----------
    r1:
        ``(b, b)`` upper-triangular diagonal tile (output of GEQRT; only
        its upper triangle is referenced).
    a2:
        ``(m2, b)`` dense tile in the same tile column, to be zeroed.

    Returns
    -------
    TSQRTResult
        ``result.r`` replaces ``r1``; the eliminated tile becomes zero.
    """
    return _stacked_factor(r1, a2, triangular_bottom=False)
