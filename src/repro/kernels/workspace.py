"""Per-worker scratch arenas for the hot-path kernel GEMMs.

Every update kernel application needs a few temporaries (``W = V^T C``,
``Tf W``, ``V W``).  Allocating them fresh per call makes the Python
allocator — not BLAS — the bottleneck at small tile sizes, so the
kernels write every product into preallocated scratch via
``np.matmul(..., out=)`` instead.

A :class:`Workspace` is *not* thread-safe by design: it is an arena one
worker owns.  The runtimes hand each worker thread/process its own
instance; code without an explicit workspace gets a thread-local one
from :func:`thread_workspace`, which preserves the same ownership rule.
"""

from __future__ import annotations

import threading

import numpy as np


class Workspace:
    """Named, grow-only scratch buffers keyed by ``(name, dtype)``.

    :meth:`temp` returns a C-contiguous view of the requested shape into
    a flat buffer that is reused across calls and only reallocated when
    a request outgrows it — so steady-state kernel execution performs no
    heap allocation.  Contents are undefined on entry; callers must
    fully overwrite what they read.

    ``fallbacks`` counts the kernel calls that could *not* use the arena
    (mixed operand dtypes force freshly allocated GEMM temporaries —
    see :func:`~repro.kernels.blockreflector.apply_block_reflector` /
    :func:`~repro.kernels.tsmqr.tsmqr`).  A nonzero count on the hot
    path means per-call heap allocation is back; the runtimes surface it
    as the ``kernel.workspace.fallbacks`` metric via
    :func:`drain_fallbacks`.
    """

    __slots__ = ("_buffers", "fallbacks")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self.fallbacks: int = 0

    def temp(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialized ``shape`` scratch array unique to ``name``.

        Two live ``temp`` views with different names never alias; asking
        for the same name again invalidates the previous view's
        contents.
        """
        dtype = np.dtype(dtype)
        n = 1
        for s in shape:
            n *= int(s)
        key = (name, dtype)
        buf = self._buffers.get(key)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 1), dtype=dtype)
            self._buffers[key] = buf
        return buf[:n].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def note_fallback(self) -> None:
        """Record one allocating (non-arena) kernel call."""
        self.fallbacks += 1

    def clear(self) -> None:
        """Release every buffer (views handed out earlier stay valid)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workspace(buffers={len(self._buffers)}, nbytes={self.nbytes})"


_local = threading.local()


def thread_workspace() -> Workspace:
    """The calling thread's private default :class:`Workspace`.

    Gives kernel callers that do not manage an arena (tests, one-off
    applications) allocation reuse for free while keeping the
    one-owner-per-arena rule: no two threads ever share an instance.
    """
    ws = getattr(_local, "workspace", None)
    if ws is None:
        ws = Workspace()
        _local.workspace = ws
    return ws


def drain_fallbacks(metrics, *workspaces: Workspace) -> int:
    """Fold accumulated fallback counts into ``metrics`` and reset them.

    Increments the ``kernel.workspace.fallbacks`` counter by the summed
    :attr:`Workspace.fallbacks` of the given arenas (when ``metrics`` is
    not ``None`` and the sum is nonzero) and zeroes the per-arena
    counters, so repeated runs report deltas rather than lifetimes.
    Returns the drained total either way.
    """
    total = 0
    for ws in workspaces:
        total += ws.fallbacks
        ws.fallbacks = 0
    if metrics is not None and total:
        metrics.counter("kernel.workspace.fallbacks").inc(total)
    return total
