"""Compact-WY block reflector accumulation and application.

Given Householder vectors ``V = [v_1 | ... | v_k]`` and scalars ``tau_i``,
the product of the elementary reflectors is

    H_1 H_2 ... H_k  =  I - V @ Tf @ V.T

with ``Tf`` upper triangular (LAPACK ``larft`` with direction 'F', storage
'C').  Applying the transpose swaps ``Tf`` for ``Tf.T`` (``larfb``).

The tile kernels in this package all reduce to these two routines; they
are therefore the hot spots and are written as a handful of BLAS-3 calls.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .workspace import Workspace, thread_workspace


def build_t_factor(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Accumulate the upper-triangular ``Tf`` factor (LAPACK ``larft``).

    Parameters
    ----------
    v:
        ``(m, k)`` matrix whose columns are the Householder vectors
        (including their unit heads — callers pass V with ``v[i, i] == 1``
        and zeros above, or the structured TS/TT equivalents).
    taus:
        Length-``k`` reflector scalars.

    Returns
    -------
    numpy.ndarray
        ``(k, k)`` upper-triangular ``Tf`` with ``Tf[i, i] == taus[i]``.

    Notes
    -----
    Recurrence: ``Tf[:i, i] = -tau_i * Tf[:i, :i] @ (V[:, :i].T @ V[:, i])``.
    """
    v = np.asarray(v)
    taus = np.asarray(taus, dtype=v.dtype)
    if v.ndim != 2:
        raise KernelError(f"V must be 2-D, got ndim={v.ndim}")
    k = v.shape[1]
    if taus.shape != (k,):
        raise KernelError(f"taus must have shape ({k},), got {taus.shape}")
    tf = np.zeros((k, k), dtype=v.dtype)
    if k == 0:
        return tf
    # V^T V once (upper part used); cheaper than k GEMVs for tile sizes.
    gram = v.T @ v
    for i in range(k):
        tau = taus[i]
        tf[i, i] = tau
        if i and tau != 0.0:
            tf[:i, i] = -tau * (tf[:i, :i] @ gram[:i, i])
    return tf


def apply_block_reflector(
    v: np.ndarray,
    tf: np.ndarray,
    c: np.ndarray,
    transpose: bool,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Apply ``I - V Tf V.T`` (or its transpose) to ``C`` from the left.

    ``C`` is updated in place and returned.  ``C`` may be arbitrarily
    wide — this is the batched-update primitive: one call over a
    horizontally stacked tile panel is the same three GEMMs as one call
    per tile, just wider.

    Parameters
    ----------
    v:
        ``(m, k)`` Householder vectors.
    tf:
        ``(k, k)`` upper-triangular compact-WY factor.
    c:
        ``(m, n)`` target block.
    transpose:
        ``True`` applies ``Q.T = I - V Tf.T V.T`` (factorization
        direction); ``False`` applies ``Q`` (Q-building direction).
    workspace:
        Scratch arena for the three products; the caller's thread-local
        default when omitted.  All GEMMs run through
        ``np.matmul(..., out=)`` so the hot path performs no per-call
        allocation.
    """
    v = np.asarray(v)
    c = np.asarray(c)
    if c.ndim != 2 or v.ndim != 2 or c.shape[0] != v.shape[0]:
        raise KernelError(
            f"incompatible shapes for block reflector: V {v.shape}, C {c.shape}"
        )
    k = v.shape[1]
    if tf.shape != (k, k):
        raise KernelError(f"Tf must have shape ({k}, {k}), got {tf.shape}")
    tf_op = tf.T if transpose else tf
    ws = workspace if workspace is not None else thread_workspace()
    if v.dtype != c.dtype or tf.dtype != c.dtype:
        # Mixed dtypes would make matmul's result dtype differ from the
        # scratch; rare (tests only), so take the allocating path.
        # Counted so the hot path can prove it never lands here.
        ws.note_fallback()
        w = tf_op @ (v.T @ c)
        c -= v @ w
        return c
    n = c.shape[1]
    w = ws.temp("abr.w", (k, n), c.dtype)
    np.matmul(v.T, c, out=w)
    w2 = ws.temp("abr.w2", (k, n), c.dtype)
    np.matmul(tf_op, w, out=w2)
    vw = ws.temp("abr.vw", c.shape, c.dtype)
    np.matmul(v, w2, out=vw)
    np.subtract(c, vw, out=c)
    return c
