"""Elementary Householder reflectors (Algorithm 1 of the paper).

A Householder reflector for a vector ``x`` is ``H = I - tau * v v^T`` with
``v[0] = 1`` chosen so that ``H x = [beta, 0, ..., 0]``.  This module
implements the numerically-stable LAPACK ``dlarfg`` convention, which the
paper's Algorithm 1 (Householder 1958) abbreviates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError


@dataclass(frozen=True)
class HouseholderReflector:
    """An elementary reflector ``H = I - tau * v v^T`` with ``v[0] == 1``.

    Attributes
    ----------
    v:
        The Householder vector, ``v[0] == 1``.
    tau:
        The reflector scalar; ``tau == 0`` encodes ``H == I``.
    beta:
        The value the reflected vector's first component takes,
        i.e. ``H @ x == [beta, 0, ..., 0]``.
    """

    v: np.ndarray
    tau: float
    beta: float

    def matrix(self) -> np.ndarray:
        """Densify ``H`` (for tests and teaching; kernels never do this)."""
        n = self.v.shape[0]
        return np.eye(n, dtype=self.v.dtype) - self.tau * np.outer(self.v, self.v)


def make_reflector(x: np.ndarray) -> HouseholderReflector:
    """Compute the Householder reflector annihilating ``x[1:]``.

    Follows the LAPACK ``larfg`` convention: ``beta = -sign(x[0]) * ||x||``
    so the subtraction ``x[0] - beta`` never cancels (the paper's
    ``alpha_k = -sgn(a_kk) ||a_k||`` in Algorithm 1, line 6).

    Parameters
    ----------
    x:
        1-D vector with at least one element.

    Returns
    -------
    HouseholderReflector
        With ``v[0] == 1``; ``tau == 0`` when ``x[1:]`` is already zero.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.shape[0] == 0:
        raise KernelError(f"reflector input must be a non-empty 1-D vector, got shape {x.shape}")
    dtype = np.result_type(x.dtype, np.float64) if x.dtype.kind != "f" else x.dtype
    x = x.astype(dtype, copy=False)

    alpha = float(x[0])
    tail = x[1:]
    sigma = float(tail @ tail)
    v = np.empty_like(x)
    v[0] = 1.0
    if sigma == 0.0:
        # Already in reflected form; H = I.
        return HouseholderReflector(v=np.concatenate(([1.0], np.zeros_like(tail))).astype(dtype), tau=0.0, beta=alpha)

    norm_x = float(np.hypot(alpha, np.sqrt(sigma)))
    beta = -np.copysign(norm_x, alpha) if alpha != 0.0 else -norm_x
    # v = (x - beta e1) / (x[0] - beta); with this sign choice the
    # denominator is |x0| + ||x|| scaled, never catastrophic.
    denom = alpha - beta
    v[1:] = tail / denom
    tau = (beta - alpha) / beta
    return HouseholderReflector(v=v, tau=float(tau), beta=float(beta))


def apply_reflector(refl: HouseholderReflector, c: np.ndarray) -> np.ndarray:
    """Apply ``H = I - tau v v^T`` to a matrix from the left, in place.

    ``H`` is symmetric so ``H == H.T``; a single routine covers both the
    factorization (apply ``H``) and Q-building directions.

    Parameters
    ----------
    refl:
        The reflector.
    c:
        2-D array with ``c.shape[0] == len(refl.v)``; modified in place
        and also returned.
    """
    c = np.asarray(c)
    if c.ndim != 2 or c.shape[0] != refl.v.shape[0]:
        raise KernelError(
            f"cannot apply reflector of length {refl.v.shape[0]} to array of shape {c.shape}"
        )
    if refl.tau == 0.0:
        return c
    w = refl.v @ c  # v^T C, shape (ncols,)
    c -= refl.tau * np.outer(refl.v, w)
    return c


def householder_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reference dense Householder QR (the paper's Algorithm 1).

    This is the unblocked column-by-column algorithm the tiled variant
    parallelizes.  It is used as the sequential baseline and as an oracle
    in tests.  Returns ``(Q, R)`` with ``A = Q @ R``, ``Q`` orthogonal and
    ``R`` upper triangular (for ``m >= n``, ``Q`` is m-by-m and ``R``
    m-by-n).

    Parameters
    ----------
    a:
        2-D real matrix, ``m >= n``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise KernelError(f"householder_qr expects a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise KernelError(f"householder_qr requires m >= n, got shape {a.shape}")
    r = a.copy()
    q = np.eye(m, dtype=r.dtype)
    for k in range(min(m - 1, n)):
        refl = make_reflector(r[k:, k])
        apply_reflector(refl, r[k:, k:])
        r[k + 1 :, k] = 0.0  # exact zeros below the diagonal
        # Accumulate Q = H_1 H_2 ... H_n applied to identity: Q <- Q H_k.
        # (Q H)^T = H Q^T, so apply H to Q^T's rows == Q's columns.
        apply_reflector(refl, q[k:, :])
    return q.T, r
