"""Build the tiled-QR task DAG (paper Fig. 3).

Dependencies are derived, not hand-coded: tasks are emitted in the
algorithm's canonical sequential order and every task declares which data
objects (tiles, reflector factors) it reads and writes; read-after-write,
write-after-write and write-after-read orderings then induce exactly the
DAG of Fig. 3.  This makes the builder trivially correct for *every*
within-panel annihilation order: the elimination tree
(:mod:`repro.dag.trees`) only decides which rows get their own GEQRT and
the ordered ``(bot, top)`` merge list per panel — any valid order yields
a correct DAG automatically.

The registered trees are ``flat`` (the paper's sequential TS chain,
alias ``"TS"``), ``flat-tt``, ``binary`` (log-round pairwise reduction,
alias ``"TT"``), ``fibonacci`` and ``greedy`` — see
:mod:`repro.dag.trees` for their shapes and arXiv:1104.4475 for the
critical-path analysis.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import DAGError
from .tasks import Step, Task, TaskKind
from .trees import EliminationTree, resolve_tree

# Data-object keys: ("t", i, j) a tile; ("Vg", i, k) GEQRT factors of tile
# (i, k); ("Ve", i, k) elimination factors that zeroed tile (i, k).
_Key = tuple


class _AccessTracker:
    """Sequential-consistency dependence inference over data objects."""

    def __init__(self):
        self._last_writer: dict[_Key, Task] = {}
        self._readers_since: dict[_Key, list[Task]] = {}

    def record(self, task: Task, reads: Iterable[_Key], writes: Iterable[_Key]) -> set[Task]:
        reads = list(reads)
        writes = list(writes)
        deps: set[Task] = set()
        for key in (*reads, *writes):
            w = self._last_writer.get(key)
            if w is not None:
                deps.add(w)
        for key in writes:
            deps.update(self._readers_since.get(key, ()))
        for key in writes:
            self._last_writer[key] = task
            self._readers_since[key] = []
        written = set(writes)
        for key in reads:
            if key not in written:
                self._readers_since.setdefault(key, []).append(task)
        deps.discard(task)
        return deps


def _task_accesses(task: Task) -> tuple[list[_Key], list[_Key]]:
    """(reads, writes) of a task; read-write tiles appear in both lists.

    A batched update accesses exactly the union of its expansion's tiles,
    so the dependencies a fused DAG derives are the per-tile DAG's edges
    collapsed onto the coarsened tasks — never weaker, never spuriously
    stronger (tested by expansion equivalence in the batched test suite).
    """
    k = task.k
    if task.kind is TaskKind.GEQRT:
        t = ("t", task.row, k)
        return [t], [t, ("Vg", task.row, k)]
    if task.kind is TaskKind.UNMQR:
        t = ("t", task.row, task.col)
        return [("Vg", task.row, k), t], [t]
    if task.kind is TaskKind.UNMQR_BATCH:
        tiles = [("t", task.row, j) for j in range(task.col, task.col_end)]
        return [("Vg", task.row, k), *tiles], tiles
    if task.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
        top = ("t", task.row2, k)
        bot = ("t", task.row, k)
        return [top, bot], [top, bot, ("Ve", task.row, k)]
    if task.kind in (TaskKind.TSMQR_BATCH, TaskKind.TTMQR_BATCH):
        pairs = [
            ("t", r, j)
            for j in range(task.col, task.col_end)
            for r in (task.row2, task.row)
        ]
        return [("Ve", task.row, k), *pairs], pairs
    # TSMQR / TTMQR
    top = ("t", task.row2, task.col)
    bot = ("t", task.row, task.col)
    return [("Ve", task.row, k), top, bot], [top, bot]


#: Public alias — the simulator reuses the same access rules the builder
#: derives dependencies from, so the two can never disagree.
task_accesses = _task_accesses


class TiledQRDag:
    """The full task DAG of one tiled QR factorization.

    Tasks are stored in a valid topological (sequential-algorithm) order;
    ``preds``/``succs`` give the dependence structure.

    Parameters
    ----------
    grid_rows, grid_cols:
        Tile-grid shape ``(p, q)``.
    elimination:
        An elimination-tree name or alias (see :mod:`repro.dag.trees`):
        ``"flat"``/``"TS"``, ``"flat-tt"``, ``"binary"``/``"TT"``,
        ``"fibonacci"`` or ``"greedy"``.  Stored canonicalized in
        :attr:`elimination`; the resolved tree object is :attr:`tree`.
    batch_updates:
        When True, all updates sharing one reflector factor across a tile
        row are emitted as a single coarsened ``UNMQR_BATCH`` /
        ``TSMQR_BATCH`` / ``TTMQR_BATCH`` task spanning columns
        ``[k+1, q)`` instead of ``q-k-1`` per-tile tasks.  Expanding every
        batched task (:meth:`~repro.dag.tasks.Task.expand`) recovers
        exactly the unfused DAG's task multiset.
    """

    def __init__(
        self,
        grid_rows: int,
        grid_cols: int,
        elimination: str = "TS",
        batch_updates: bool = False,
    ):
        if grid_rows < 1 or grid_cols < 1:
            raise DAGError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
        self.tree: EliminationTree = resolve_tree(elimination)
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.elimination = self.tree.name
        self.batch_updates = batch_updates
        self.tasks: list[Task] = []
        self.preds: dict[Task, frozenset[Task]] = {}
        self.succs: dict[Task, set[Task]] = {}
        self._build()

    # -- construction ---------------------------------------------------

    def accesses(self, task: Task) -> tuple[list[_Key], list[_Key]]:
        """(reads, writes) of a task — overridable by DAG subclasses with
        different data semantics (e.g. the solve DAG)."""
        return _task_accesses(task)

    def _emit(self, tracker: _AccessTracker, task: Task) -> None:
        reads, writes = self.accesses(task)
        deps = tracker.record(task, reads, writes)
        self.tasks.append(task)
        self.preds[task] = frozenset(deps)
        self.succs[task] = set()
        for d in deps:
            self.succs[d].add(task)

    def _build(self) -> None:
        p, q = self.grid_rows, self.grid_cols
        tracker = _AccessTracker()
        for k in range(min(p, q)):
            if self.tree.uses_tt:
                self._build_panel_tt(tracker, k, p, q)
            else:
                self._build_panel_ts(tracker, k, p, q)

    def _emit_updates(
        self,
        tracker: _AccessTracker,
        kind: TaskKind,
        batch_kind: TaskKind,
        k: int,
        row: int,
        row2: int,
        q: int,
    ) -> None:
        """Emit the trailing-column updates of one factor: per-tile tasks
        normally, one coarsened task under ``batch_updates``."""
        if k + 1 >= q:
            return
        if self.batch_updates:
            self._emit(tracker, Task(batch_kind, k, row, row2, k + 1, q))
        else:
            for j in range(k + 1, q):
                self._emit(tracker, Task(kind, k, row, row2, j))

    def _build_panel_ts(self, tracker: _AccessTracker, k: int, p: int, q: int) -> None:
        self._emit(tracker, Task(TaskKind.GEQRT, k, k, k, k))
        self._emit_updates(tracker, TaskKind.UNMQR, TaskKind.UNMQR_BATCH, k, k, k, q)
        for bot, top in self.tree.pairs(k, p):
            self._emit(tracker, Task(TaskKind.TSQRT, k, bot, top, k))
            self._emit_updates(
                tracker, TaskKind.TSMQR, TaskKind.TSMQR_BATCH, k, bot, top, q
            )

    def _build_panel_tt(self, tracker: _AccessTracker, k: int, p: int, q: int) -> None:
        for i in self.tree.geqrt_rows(k, p):
            self._emit(tracker, Task(TaskKind.GEQRT, k, i, i, k))
            self._emit_updates(tracker, TaskKind.UNMQR, TaskKind.UNMQR_BATCH, k, i, i, q)
        for bot, top in self.tree.pairs(k, p):
            self._emit(tracker, Task(TaskKind.TTQRT, k, bot, top, k))
            self._emit_updates(
                tracker, TaskKind.TTMQR, TaskKind.TTMQR_BATCH, k, bot, top, q
            )

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def sources(self) -> list[Task]:
        """Tasks with no predecessors (ready at time zero)."""
        return [t for t in self.tasks if not self.preds[t]]

    def sinks(self) -> list[Task]:
        """Tasks with no successors."""
        return [t for t in self.tasks if not self.succs[t]]

    def panel_tasks(self, k: int) -> list[Task]:
        """All tasks of panel ``k`` in emission order."""
        return [t for t in self.tasks if t.k == k]

    def count_by_step(self) -> dict[Step, int]:
        """Number of tasks per paper step over the whole DAG."""
        out = {s: 0 for s in Step}
        for t in self.tasks:
            out[t.step] += 1
        return out

    def validate_completed(self, completed: set[Task] | frozenset[Task]) -> None:
        """Check that ``completed`` is a sound partial execution state.

        Every completed task must belong to this DAG and have all of its
        predecessors completed (downward closure) — otherwise the state
        cannot have arisen from any legal execution and resuming from it
        would silently compute garbage.
        """
        known = self.preds.keys()
        for t in completed:
            if t not in known:
                raise DAGError(f"completed task {t} is not in this DAG")
            missing = [d for d in self.preds[t] if d not in completed]
            if missing:
                raise DAGError(
                    f"completed set is not closed under dependencies: "
                    f"{t} done but predecessor {missing[0]} is not"
                )

    def frontier(self, completed: set[Task] | frozenset[Task]) -> list[Task]:
        """Tasks ready to run given a completed set (in emission order).

        The execution frontier of a partial factorization: every
        not-yet-completed task whose predecessors have all completed.
        Checkpoint resume seeds the runtimes from exactly this set.
        """
        return [
            t
            for t in self.tasks
            if t not in completed and all(d in completed for d in self.preds[t])
        ]

    def validate(self) -> None:
        """Cheap structural self-check (used by tests).

        Verifies that the emission order is topological and that
        pred/succ maps are mutually consistent.
        """
        position = {t: n for n, t in enumerate(self.tasks)}
        if len(position) != len(self.tasks):
            raise DAGError("duplicate tasks in DAG")
        for t in self.tasks:
            for d in self.preds[t]:
                if position[d] >= position[t]:
                    raise DAGError(f"dependency {d} does not precede {t}")
                if t not in self.succs[d]:
                    raise DAGError(f"succs missing edge {d} -> {t}")
        for t, ss in self.succs.items():
            for s in ss:
                if t not in self.preds[s]:
                    raise DAGError(f"preds missing edge {t} -> {s}")


def build_dag(
    grid_rows: int,
    grid_cols: int,
    elimination: str = "TS",
    batch_updates: bool = False,
) -> TiledQRDag:
    """Convenience constructor for :class:`TiledQRDag`."""
    return TiledQRDag(grid_rows, grid_cols, elimination, batch_updates)
