"""Pluggable within-panel elimination trees (arXiv:1104.4475).

The tiled-QR panel reduction admits many annihilation orders: the
builder derives dependencies from declared reads/writes, so *any* order
that eliminates each sub-diagonal panel row exactly once against a
still-live row above it yields a correct DAG.  This module is the
registry of such orders — the elimination trees of "Tiled QR
factorization algorithms" (Bouwmeester, Jacquelin, Langou, Robert;
arXiv:1104.4475):

``flat``
    The paper's sequential TS chain (Fig. 2): GEQRT on the diagonal
    tile, then every tile below merges into it one after another via
    TSQRT.  Critical path O(p) per panel; fewest tasks.
``flat-tt``
    Same sequential chain, but every panel row is pre-triangulated by
    its own GEQRT and the merges are TTQRT — the triangle-triangle
    variant of FLAT.  Longer panel path than ``binary`` but the per-row
    GEQRTs (and their trailing updates) are embarrassingly parallel.
``binary``
    Pairwise binary-tree reduction: GEQRT every row, then merge pairs
    at doubling strides.  Critical path O(log p) rounds per panel.
``fibonacci``
    Round-based asymmetric tree: sub-diagonal rows are grouped bottom-up
    into blocks of Fibonacci sizes (1, 1, 2, 3, 5, ...) and eliminated
    block by block, each row merging into the nearest still-live row
    above.  Sits between ``flat`` and ``binary``: bottom rows retire in
    the earliest rounds (freeing their trailing updates sooner) while
    rows near the diagonal stay live — the shape arXiv:1104.4475 shows
    is optimal under weighted (non-unit) kernel costs.
``greedy``
    Per round, merge as many adjacent live pairs as possible, bottom
    first.  Matches BINARY's O(log p) round count but annihilates the
    *bottom-most* rows earliest, which pipelines best into the next
    panel on tall grids (arXiv:1104.4475's GREEDY).

``TS`` and ``TT`` remain accepted as aliases of ``flat`` and ``binary``
(the seed's two orders); every consumer should canonicalize through
:func:`canonical_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import DAGError

#: One merge: row ``bot`` is annihilated against surviving row ``top``
#: (``top < bot``; both live at that point of the order).
Pair = tuple  # (bot, top)


@dataclass(frozen=True)
class EliminationTree:
    """One within-panel annihilation order.

    Attributes
    ----------
    name:
        Canonical registry name.
    uses_tt:
        ``True`` when every panel row is pre-triangulated by its own
        GEQRT and merges are triangle-triangle (TTQRT); ``False`` for
        the TS chain (single diagonal GEQRT, dense-bottom TSQRT merges).
    description:
        One-line summary for ``--tree`` help and audit records.
    pair_fn:
        ``(k, p) -> [(bot, top), ...]`` — the ordered merge list for
        panel ``k`` over ``p`` tile rows.  Each sub-diagonal row appears
        exactly once as ``bot``; every ``top`` is live (not yet
        annihilated) and ``top < bot``.
    """

    name: str
    uses_tt: bool
    description: str
    pair_fn: Callable[[int, int], list[Pair]] = field(repr=False)

    def pairs(self, k: int, p: int) -> list[Pair]:
        """Ordered ``(bot, top)`` merges of panel ``k`` on ``p`` rows."""
        return self.pair_fn(k, p)

    def geqrt_rows(self, k: int, p: int) -> list[int]:
        """Panel rows that receive their own GEQRT."""
        return list(range(k, p)) if self.uses_tt else [k]


def _flat_pairs(k: int, p: int) -> list[Pair]:
    return [(i, k) for i in range(k + 1, p)]


def _binary_pairs(k: int, p: int) -> list[Pair]:
    # Doubling-stride pairing; reproduces the seed's "TT" order exactly.
    pairs: list[Pair] = []
    dist = 1
    while k + dist < p:
        for top in range(k, p - dist, 2 * dist):
            pairs.append((top + dist, top))
        dist *= 2
    return pairs


def _fibonacci_pairs(k: int, p: int) -> list[Pair]:
    rows = list(range(k + 1, p))
    if not rows:
        return []
    # Bottom-up blocks of Fibonacci sizes; block r retires in round r.
    blocks: list[list[int]] = []
    fib_a, fib_b = 1, 1
    hi = len(rows)
    while hi > 0:
        take = min(fib_a, hi)
        blocks.append(rows[hi - take : hi])
        hi -= take
        fib_a, fib_b = fib_b, fib_a + fib_b
    live = set(range(k, p))
    pairs: list[Pair] = []
    for block in blocks:
        # Merges within a round target *distinct* live survivors where
        # possible (they run in parallel); only when victims outnumber
        # the survivors above them does a target absorb a second merge.
        used: set[int] = set()
        for bot in sorted(block, reverse=True):
            free = [r for r in live if r < bot and r not in block and r not in used]
            top = max(free) if free else max(r for r in live if r < bot)
            used.add(top)
            pairs.append((bot, top))
            live.discard(bot)
    return pairs


def _greedy_pairs(k: int, p: int) -> list[Pair]:
    live = list(range(k, p))
    pairs: list[Pair] = []
    while len(live) > 1:
        # One round: pair adjacent live rows from the bottom up, killing
        # floor(len/2) rows — as many simultaneous merges as possible.
        survivors: list[int] = []
        i = len(live) - 1
        while i >= 1:
            pairs.append((live[i], live[i - 1]))
            survivors.append(live[i - 1])
            i -= 2
        if i == 0:
            survivors.append(live[0])
        live = sorted(survivors)
    return pairs


TREES: dict[str, EliminationTree] = {
    t.name: t
    for t in (
        EliminationTree(
            "flat", False,
            "sequential TS chain (paper Fig. 2; alias 'TS')", _flat_pairs,
        ),
        EliminationTree(
            "flat-tt", True,
            "sequential chain over pre-triangulated rows", _flat_pairs,
        ),
        EliminationTree(
            "binary", True,
            "pairwise log-round reduction (alias 'TT')", _binary_pairs,
        ),
        EliminationTree(
            "fibonacci", True,
            "Fibonacci-block rounds, bottom rows first", _fibonacci_pairs,
        ),
        EliminationTree(
            "greedy", True,
            "max merges per round, bottom-most first", _greedy_pairs,
        ),
    )
}

#: Seed-era names (and their lowercase forms) mapped to canonical trees.
ALIASES: dict[str, str] = {"ts": "flat", "tt": "binary"}

#: ``--tree`` vocabulary: ``auto`` plus every canonical name.
AUTO = "auto"


def tree_names() -> tuple[str, ...]:
    """Canonical tree names, registration order."""
    return tuple(TREES)


def canonical_tree(name: str) -> str:
    """Map a tree/elimination name (or alias) to its canonical form.

    Raises :class:`~repro.errors.DAGError` for unknown names; the
    message enumerates the registry so it stays correct as trees are
    added.
    """
    if isinstance(name, EliminationTree):
        return name.name
    key = str(name).lower()
    key = ALIASES.get(key, key)
    if key not in TREES:
        allowed = ", ".join(repr(n) for n in TREES)
        alias = ", ".join(f"{a.upper()!r}->{c!r}" for a, c in ALIASES.items())
        raise DAGError(
            f"elimination must be one of {allowed} (aliases: {alias}), "
            f"got {name!r}"
        )
    return key


def resolve_tree(name: str) -> EliminationTree:
    """The :class:`EliminationTree` for a name or alias (see
    :func:`canonical_tree`)."""
    return TREES[canonical_tree(name)]
