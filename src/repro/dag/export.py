"""Export the tiled-QR DAG to networkx / Graphviz (paper Fig. 3)."""

from __future__ import annotations

import networkx as nx

from .builder import TiledQRDag


def to_networkx(dag: TiledQRDag) -> "nx.DiGraph":
    """Convert to a :class:`networkx.DiGraph`.

    Node attributes: ``kind``, ``step``, ``k``, ``row``, ``row2``, ``col``
    and a display ``label``.
    """
    g = nx.DiGraph()
    for t in dag.tasks:
        g.add_node(
            t,
            kind=t.kind.value,
            step=t.step.value,
            k=t.k,
            row=t.row,
            row2=t.row2,
            col=t.col,
            label=t.label(),
        )
    for t in dag.tasks:
        for d in dag.preds[t]:
            g.add_edge(d, t)
    return g


def to_dot(dag: TiledQRDag) -> str:
    """Render a Graphviz ``dot`` description (Fig. 3-style, T/E/UT/UE).

    Small grids only — intended for documentation and examples.
    """
    colors = {"T": "#e15759", "E": "#f28e2b", "UT": "#4e79a7", "UE": "#76b7b2"}
    lines = ["digraph tiledqr {", "  rankdir=TB;", "  node [style=filled, fontname=monospace];"]
    ids = {t: f"t{n}" for n, t in enumerate(dag.tasks)}
    for t in dag.tasks:
        lines.append(
            f'  {ids[t]} [label="{t.label()}", fillcolor="{colors[t.step.value]}"];'
        )
    for t in dag.tasks:
        for d in dag.preds[t]:
            lines.append(f"  {ids[d]} -> {ids[t]};")
    lines.append("}")
    return "\n".join(lines)
