"""Task DAG for the *solve* phase: ``x = R^{-1} (Q^T b)``.

The paper's use case (Eqs. 2-3) needs two sweeps after factorization:

1. **Q^T application** — replay the reflector log over the RHS tile
   column(s): per panel ``k``, one UNMQR-like task on RHS tile-row ``k``
   followed by the chain of TSMQR-like pair tasks down the rows (the
   same dependency shape as the factorization's panel, restricted to
   one column).
2. **Triangular solve** — bottom-up over tile rows: a diagonal solve
   (TRSM) per row, each feeding substitution GEMMs into every row above.

Tasks reuse the factorization's :class:`~repro.dag.tasks.Task` type with
the RHS/solve column indices mapped past the matrix grid, so the same
simulator machinery prices them; kernel steps map onto UT (single-tile
ops: UNMQR apply, TRSM) and UE (pair ops: TSMQR apply, GEMM update).
"""

from __future__ import annotations

from ..errors import DAGError
from .builder import TiledQRDag, _AccessTracker
from .tasks import Task, TaskKind


class SolveDag(TiledQRDag):
    """Dependency graph of one batched solve against a factorization.

    Parameters
    ----------
    grid_rows:
        Tile rows of the factored matrix (= RHS tile rows).
    rhs_tiles:
        Width of the right-hand-side block in tiles
        (``ceil(nrhs / b)``).

    Notes
    -----
    Column index convention: RHS tile column ``c`` is addressed as
    ``grid_rows + c`` so solve tasks never collide with matrix tiles.
    """

    def __init__(self, grid_rows: int, rhs_tiles: int = 1):
        if grid_rows < 1 or rhs_tiles < 1:
            raise DAGError(
                f"need at least a 1-tile system and 1 RHS tile, got "
                f"{grid_rows}/{rhs_tiles}"
            )
        self.grid_rows = grid_rows
        self.grid_cols = grid_rows + rhs_tiles  # for simulator owner lookups
        self.rhs_tiles = rhs_tiles
        from .trees import resolve_tree

        self.tree = resolve_tree("flat")
        self.elimination = self.tree.name
        self.tasks = []
        self.preds = {}
        self.succs = {}
        self._build_solve()

    def _build_solve(self) -> None:
        p = self.grid_rows
        tracker = _AccessTracker()
        # Phase 1: Q^T b — replay panels over each RHS tile column.
        for k in range(p):
            for c in range(self.rhs_tiles):
                col = p + c
                # UNMQR-like apply of the panel's GEQRT to RHS row k.
                self._emit(tracker, Task(TaskKind.UNMQR, k, k, k, col))
                # TSMQR-like chain down the panel rows.
                for i in range(k + 1, p):
                    self._emit(tracker, Task(TaskKind.TSMQR, k, i, k, col))
        # Phase 2: back-substitution, bottom-up.  Row i's TRSM waits for
        # every GEMM from rows below; we model TRSM as an UNMQR-step task
        # at panel index p (+i) and the substitution GEMMs as TSMQR-step
        # pair tasks.
        for i in range(p - 1, -1, -1):
            for c in range(self.rhs_tiles):
                col = p + c
                self._emit(tracker, Task(TaskKind.UNMQR, p + i, i, i, col))
                for j in range(i - 1, -1, -1):
                    # Substitute x_i into row j's RHS.
                    self._emit(tracker, Task(TaskKind.TSMQR, p + i, i, j, col))

    def accesses(self, task: Task):
        """Solve-phase data semantics.

        Back-substitution GEMMs (panel index >= grid_rows) only *read*
        the solved block ``x_i`` — unlike factorization pair-updates,
        which rewrite both tiles — so substitutions into different rows
        run in parallel.
        """
        reads, writes = super().accesses(task)
        if task.k >= self.grid_rows and task.kind is TaskKind.TSMQR:
            x_tile = ("t", task.row, task.col)
            writes = [w for w in writes if w != x_tile]
        return reads, writes

    def validate(self) -> None:  # inherit structural check
        super().validate()


def build_solve_dag(grid_rows: int, rhs_tiles: int = 1) -> SolveDag:
    """Convenience constructor for :class:`SolveDag`."""
    return SolveDag(grid_rows, rhs_tiles)
