"""Structural analysis of the tiled-QR DAG.

Includes the paper's Table I counting model, the exact per-panel counts
the DAG actually contains, and generic DAG metrics (critical path, width)
used by the simulator's lower-bound checks.
"""

from __future__ import annotations

from typing import Callable

from .tasks import Step, Task
from .builder import TiledQRDag


def step_counts(m: int, n: int) -> dict[Step, int]:
    """The paper's Table I: tiles operated per step for an M x N panel.

    The paper counts the whole M-tile panel column under both T and E
    (M each) and attributes ``M x (N-1)`` tiles to each update step — an
    upper-bound accounting that treats every updated tile as receiving
    both kinds of update.  :func:`dag_step_counts` gives the exact task
    counts of the flat-tree DAG for comparison.
    """
    if m < 1 or n < 1:
        raise ValueError(f"panel must be at least 1x1, got {m}x{n}")
    return {
        Step.T: m,
        Step.E: m,
        Step.UT: m * (n - 1),
        Step.UE: m * (n - 1),
    }


def dag_step_counts(m: int, n: int) -> dict[Step, int]:
    """Exact task counts of one flat-tree (TS) panel over an M x N grid."""
    if m < 1 or n < 1:
        raise ValueError(f"panel must be at least 1x1, got {m}x{n}")
    return {
        Step.T: 1,
        Step.E: m - 1,
        Step.UT: n - 1,
        Step.UE: (m - 1) * (n - 1),
    }


def task_counts_total(p: int, q: int) -> dict[Step, int]:
    """Exact total task counts of the full flat-tree DAG on a p x q grid.

    Closed form — matches ``len(build_dag(p, q).tasks)`` without building
    the DAG, so it is usable for the paper's 1000 x 1000 grids.
    """
    totals = {s: 0 for s in Step}
    for k in range(min(p, q)):
        c = dag_step_counts(p - k, q - k)
        for s in Step:
            totals[s] += c[s]
    return totals


def critical_path_length(
    dag: TiledQRDag,
    weight: Callable[[Task], float] | None = None,
) -> float:
    """Longest weighted path through the DAG.

    Parameters
    ----------
    dag:
        The task DAG.
    weight:
        Per-task cost; defaults to 1 (path length in tasks).

    Returns
    -------
    float
        The makespan lower bound for infinitely many devices.
    """
    w = weight if weight is not None else (lambda _t: 1.0)
    finish: dict[Task, float] = {}
    for t in dag.tasks:  # emission order is topological
        start = max((finish[d] for d in dag.preds[t]), default=0.0)
        finish[t] = start + w(t)
    return max(finish.values(), default=0.0)


def bottom_level_ranks(
    dag: TiledQRDag,
    weight: Callable[[Task], float] | None = None,
) -> dict[Task, float]:
    """Per-task *bottom-level* rank: the weighted length of the longest
    path from the task to any sink, inclusive of the task itself.

    The classic list-scheduling priority: popping the highest-rank ready
    task first always advances the remaining critical path, which is
    what bounds makespan once kernel throughput is saturated.  Ranks are
    monotone along every edge — ``rank(pred) > rank(succ)`` — because a
    predecessor's longest tail passes through (or exceeds) each
    successor's.

    Parameters
    ----------
    dag:
        The task DAG.
    weight:
        Per-task cost (seconds or flops — only relative magnitudes
        matter); defaults to 1 per task.
    """
    w = weight if weight is not None else (lambda _t: 1.0)
    ranks: dict[Task, float] = {}
    for t in reversed(dag.tasks):  # reverse emission order = reverse topological
        tail = max((ranks[s] for s in dag.succs[t]), default=0.0)
        ranks[t] = w(t) + tail
    return ranks


def task_weight_model(
    tile_size: int,
    profile=None,
    device: str | None = None,
    backend: str | None = None,
) -> Callable[[Task], float]:
    """Per-task cost model for :func:`bottom_level_ranks`.

    With a :class:`~repro.observability.profile.ProfileStore`, measured
    mean per-call seconds price each kernel kind; kinds the store has
    never seen are priced by their flop count converted at the store's
    achieved flop rate (so mixed measured/unmeasured weights stay in one
    unit).  Without a profile — or with an empty one — weights are plain
    flop counts.  Batched kinds pool with their single kind in the store
    and scale by column count.
    """
    from ..kernels import flops as fl

    flop_of = {
        "GEQRT": fl.flops_geqrt(tile_size),
        "UNMQR": fl.flops_unmqr(tile_size),
        "TSQRT": fl.flops_tsqrt(tile_size),
        "TSMQR": fl.flops_tsmqr(tile_size),
        "TTQRT": fl.flops_ttqrt(tile_size),
        "TTMQR": fl.flops_ttmqr(tile_size),
    }

    seconds: dict[str, float] = {}
    if profile is not None:
        total_flops = 0.0
        total_seconds = 0.0
        for name in flop_of:
            stats = profile.stats(
                name, device=device, tile_size=tile_size, backend=backend
            )
            if stats is not None and stats.mean_seconds > 0.0:
                seconds[name] = stats.mean_seconds
                total_seconds += stats.mean_seconds
                total_flops += flop_of[name]
        if seconds and total_flops > 0.0:
            rate = total_flops / total_seconds  # achieved flops/sec
            for name, f in flop_of.items():
                seconds.setdefault(name, f / rate)

    per_call = seconds if seconds else flop_of

    def weight(task: Task) -> float:
        base = per_call[task.kind.single.name]
        return base * task.ncols if task.is_batch else base

    return weight


def max_parallelism(dag: TiledQRDag) -> int:
    """Width of the DAG under greedy level scheduling.

    The number of tasks that become ready in the widest unit-time level
    when every task costs 1 — an (optimistic) parallelism indicator used
    in scalability discussions.
    """
    level: dict[Task, int] = {}
    width: dict[int, int] = {}
    for t in dag.tasks:
        lv = max((level[d] + 1 for d in dag.preds[t]), default=0)
        level[t] = lv
        width[lv] = width.get(lv, 0) + 1
    return max(width.values(), default=0)


def per_panel_ready_updates(p: int, q: int, k: int) -> int:
    """Tiles updated in panel ``k`` — the parallel work pool the paper's
    ``#tile(i)`` distributes over devices (Eq. 10)."""
    m = p - k
    n = q - k
    return m * (n - 1)
