"""Task and step definitions for the tiled QR DAG.

The paper divides the per-tile work into four *steps* (Sec. II-B): the
device models and the optimizer reason in terms of these steps, while the
DAG holds concrete *tasks* (a step applied to specific tiles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DAGError


class Step(enum.Enum):
    """The paper's four operation steps.

    ==  ======================  ===============================
    T   triangulation           GEQRT on one tile
    E   elimination             TSQRT / TTQRT on a tile pair
    UT  update for triangulation UNMQR on one tile
    UE  update for elimination  TSMQR / TTMQR on a tile pair
    ==  ======================  ===============================
    """

    T = "T"
    E = "E"
    UT = "UT"
    UE = "UE"

    @property
    def is_update(self) -> bool:
        """Updates are the high-parallelism steps (paper Sec. III-A)."""
        return self in (Step.UT, Step.UE)


class TaskKind(enum.Enum):
    """Concrete kernels; two elimination flavours exist (TS and TT).

    The ``*_BATCH`` kinds are coarsened update tasks: one task applies a
    single reflector factor to a *range* of tile columns
    ``[col, col_end)`` of a tile row (pair) as a handful of wide GEMMs
    instead of ``col_end - col`` per-tile kernel calls.  They exist only
    in DAGs built with ``batch_updates=True``; :meth:`Task.expand` maps
    them back onto the per-tile kinds.
    """

    GEQRT = "GEQRT"
    UNMQR = "UNMQR"
    TSQRT = "TSQRT"
    TSMQR = "TSMQR"
    TTQRT = "TTQRT"
    TTMQR = "TTMQR"
    UNMQR_BATCH = "UNMQR_BATCH"
    TSMQR_BATCH = "TSMQR_BATCH"
    TTMQR_BATCH = "TTMQR_BATCH"

    @property
    def step(self) -> Step:
        return _KIND_TO_STEP[self]

    @property
    def is_batch(self) -> bool:
        return self in _BATCH_TO_SINGLE

    @property
    def single(self) -> "TaskKind":
        """The per-tile kind a batched kind coarsens (identity otherwise)."""
        return _BATCH_TO_SINGLE.get(self, self)


_KIND_TO_STEP = {
    TaskKind.GEQRT: Step.T,
    TaskKind.UNMQR: Step.UT,
    TaskKind.TSQRT: Step.E,
    TaskKind.TTQRT: Step.E,
    TaskKind.TSMQR: Step.UE,
    TaskKind.TTMQR: Step.UE,
    TaskKind.UNMQR_BATCH: Step.UT,
    TaskKind.TSMQR_BATCH: Step.UE,
    TaskKind.TTMQR_BATCH: Step.UE,
}

_BATCH_TO_SINGLE = {
    TaskKind.UNMQR_BATCH: TaskKind.UNMQR,
    TaskKind.TSMQR_BATCH: TaskKind.TSMQR,
    TaskKind.TTMQR_BATCH: TaskKind.TTMQR,
}


@dataclass(frozen=True)
class Task:
    """One kernel invocation on specific tiles.

    Attributes
    ----------
    kind:
        Which kernel runs.
    k:
        Panel (iteration) index.
    row:
        Tile row of the primary operand: the factored tile for GEQRT, the
        *eliminated* (bottom) tile row for TSQRT/TTQRT and their updates,
        and the factor-source row for UNMQR.
    row2:
        The *top* tile row for eliminations and elimination updates (the
        diagonal row ``k`` in the paper's flat-tree order; an inner tree
        node for TT reductions).  Equal to ``row`` for GEQRT/UNMQR.
    col:
        Tile column the task updates; ``k`` for GEQRT and eliminations.
        The *first* updated column for batched update kinds.
    col_end:
        Exclusive end of the updated column range for the ``*_BATCH``
        kinds (so the task covers ``col_end - col`` tiles per row).
        Must stay at the default ``-1`` for per-tile kinds.
    """

    kind: TaskKind
    k: int
    row: int
    row2: int
    col: int
    col_end: int = -1

    def __post_init__(self):
        if self.k < 0 or self.row < 0 or self.row2 < 0 or self.col < 0:
            raise DAGError(f"negative index in task {self}")
        if self.kind.is_batch:
            if self.col_end <= self.col:
                raise DAGError(
                    f"batched update needs col_end > col, got {self.col_end} <= {self.col}"
                )
        elif self.col_end != -1:
            raise DAGError(f"col_end is only valid on batched update kinds, got {self}")
        if (
            self.kind in (TaskKind.GEQRT, TaskKind.UNMQR, TaskKind.UNMQR_BATCH)
            and self.row2 != self.row
        ):
            raise DAGError(f"{self.kind.value} tasks must have row2 == row, got {self}")
        if self.kind is TaskKind.GEQRT and self.col != self.k:
            raise DAGError(f"GEQRT must act on the panel column, got {self}")
        if self.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
            if self.col != self.k:
                raise DAGError(f"eliminations act on the panel column, got {self}")
            if self.row2 >= self.row:
                raise DAGError(f"elimination top row must lie above bottom row: {self}")

    @property
    def step(self) -> Step:
        """The paper-level step this task belongs to."""
        return self.kind.step

    @property
    def is_batch(self) -> bool:
        """True for coarsened ``*_BATCH`` update tasks."""
        return self.kind.is_batch

    @property
    def ncols(self) -> int:
        """Number of tile columns this task updates (1 for per-tile kinds)."""
        return self.col_end - self.col if self.kind.is_batch else 1

    @property
    def last_col(self) -> int:
        """Highest tile column the task touches (== ``col`` when unbatched)."""
        return self.col_end - 1 if self.kind.is_batch else self.col

    def expand(self) -> list["Task"]:
        """The per-tile task list a batched task coarsens.

        A batched update expands to one per-tile update per covered
        column; per-tile tasks expand to ``[self]``.  The multiset of
        expansions over a fused DAG equals the unfused DAG's task list.
        """
        if not self.kind.is_batch:
            return [self]
        single = self.kind.single
        return [
            Task(single, self.k, self.row, self.row2, j)
            for j in range(self.col, self.col_end)
        ]

    def sort_key(self) -> tuple:
        """Deterministic ordering: panel, tile position, kind name."""
        return (self.k, self.row, self.row2, self.col, self.kind.value, self.col_end)

    def __lt__(self, other: "Task") -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def label(self) -> str:
        """Compact human-readable identifier (used in traces/exports)."""
        if self.kind is TaskKind.GEQRT:
            return f"T[{self.row},{self.col}]"
        if self.kind is TaskKind.UNMQR:
            return f"UT[{self.row},{self.col}]k{self.k}"
        if self.kind is TaskKind.UNMQR_BATCH:
            return f"UT[{self.row},{self.col}:{self.col_end}]k{self.k}"
        if self.kind in (TaskKind.TSQRT, TaskKind.TTQRT):
            return f"E[{self.row2}+{self.row},{self.col}]"
        if self.kind.is_batch:
            return f"UE[{self.row2}+{self.row},{self.col}:{self.col_end}]k{self.k}"
        return f"UE[{self.row2}+{self.row},{self.col}]k{self.k}"

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.label()
