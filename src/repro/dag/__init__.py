"""Task DAG for tiled QR decomposition (paper Sec. II-B, Fig. 3)."""

from .tasks import Step, TaskKind, Task
from .trees import EliminationTree, TREES, canonical_tree, resolve_tree, tree_names
from .builder import TiledQRDag, build_dag
from .analysis import (
    step_counts,
    task_counts_total,
    critical_path_length,
    max_parallelism,
    bottom_level_ranks,
    task_weight_model,
)

__all__ = [
    "Step",
    "TaskKind",
    "Task",
    "EliminationTree",
    "TREES",
    "canonical_tree",
    "resolve_tree",
    "tree_names",
    "TiledQRDag",
    "build_dag",
    "step_counts",
    "task_counts_total",
    "critical_path_length",
    "max_parallelism",
    "bottom_level_ranks",
    "task_weight_model",
]
