"""Task DAG for tiled QR decomposition (paper Sec. II-B, Fig. 3)."""

from .tasks import Step, TaskKind, Task
from .builder import TiledQRDag, build_dag
from .analysis import (
    step_counts,
    task_counts_total,
    critical_path_length,
    max_parallelism,
)

__all__ = [
    "Step",
    "TaskKind",
    "Task",
    "TiledQRDag",
    "build_dag",
    "step_counts",
    "task_counts_total",
    "critical_path_length",
    "max_parallelism",
]
