"""Small shared helpers used across the repro package."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ShapeError


def as_square_matrix(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``a`` as a 2-D square ndarray, validating its shape.

    Parameters
    ----------
    a:
        Array-like input.
    name:
        Name used in error messages.
    """
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {arr.shape}")
    return arr


def require_2d(a: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``a`` as a 2-D ndarray or raise :class:`ShapeError`."""
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    return arr


def require_same_shape(a: np.ndarray, b: np.ndarray, what: str = "arrays") -> None:
    """Raise :class:`ShapeError` unless ``a`` and ``b`` have equal shapes."""
    if a.shape != b.shape:
        raise ShapeError(f"{what} must have equal shapes, got {a.shape} and {b.shape}")


def frobenius_relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Relative Frobenius-norm error ``||actual - expected|| / ||expected||``.

    Falls back to the absolute error when ``expected`` is (numerically)
    zero, so the result is always finite.
    """
    denom = float(np.linalg.norm(expected))
    err = float(np.linalg.norm(np.asarray(actual) - np.asarray(expected)))
    if denom <= np.finfo(np.float64).tiny:
        return err
    return err / denom


def is_upper_triangular(a: np.ndarray, atol: float = 0.0) -> bool:
    """True when every strictly-lower-triangular entry of ``a`` is ~ 0."""
    arr = require_2d(a)
    lower = np.tril(arr, k=-1)
    if atol == 0.0:
        return not np.any(lower)
    return bool(np.all(np.abs(lower) <= atol))


def orthogonality_error(q: np.ndarray) -> float:
    """``||Q^T Q - I||_F`` — 0 for a perfectly orthogonal matrix."""
    q = require_2d(q, "Q")
    n = q.shape[1]
    return float(np.linalg.norm(q.T @ q - np.eye(n, dtype=q.dtype)))


def human_time(seconds: float) -> str:
    """Format a duration in engineering-friendly units."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds < 0:
        return f"-{human_time(-seconds)}"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def geometric_sizes(start: int, stop: int, factor: float) -> list[int]:
    """Geometric sweep of integer sizes, inclusive of both endpoints."""
    if start <= 0 or stop < start or factor <= 1.0:
        raise ValueError("need 0 < start <= stop and factor > 1")
    out = []
    x = float(start)
    while x < stop:
        out.append(int(round(x)))
        x *= factor
    out.append(stop)
    # Deduplicate while preserving order.
    seen: set[int] = set()
    uniq = []
    for v in out:
        if v not in seen:
            seen.add(v)
            uniq.append(v)
    return uniq


def chunked(seq: Sequence, size: int) -> Iterable[Sequence]:
    """Yield successive chunks of ``seq`` of at most ``size`` elements."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    for i in range(0, len(seq), size):
        yield seq[i : i + size]
