"""Trace visualization: ASCII Gantt charts and Chrome trace export.

``ascii_gantt`` renders an :class:`~repro.sim.trace.ExecutionTrace` as a
per-device timeline directly in the terminal; ``to_chrome_trace`` emits
the Trace Event JSON format so a trace can be opened in
``chrome://tracing`` / Perfetto for interactive inspection.
"""

from __future__ import annotations

import json

from ..dag.tasks import Step
from .trace import ExecutionTrace

#: Display characters per step kind.
_STEP_CHAR = {Step.T: "T", Step.E: "E", Step.UT: "u", Step.UE: "x"}
#: Batched row-panel updates get uppercase variants so a coarsened
#: record is distinguishable from a run of per-tile kernels.
_BATCH_CHAR = {Step.UT: "U", Step.UE: "X"}


def _task_char(task) -> str:
    if task.is_batch:
        return _BATCH_CHAR.get(task.step, _STEP_CHAR[task.step])
    return _STEP_CHAR[task.step]


def ascii_gantt(
    trace: ExecutionTrace,
    width: int = 100,
    include_transfers: bool = True,
) -> str:
    """Render the trace as one text row per device (plus link rows).

    Each column of the chart is a time bucket; the character shows what
    dominated the bucket (``T``/``E`` panel kernels, ``u``/``x`` update
    kernels, ``-`` transfers, space = idle).
    """
    if not trace.tasks:
        return "(empty trace)"
    span = trace.makespan
    if span <= 0:
        return "(zero-length trace)"
    scale = width / span

    rows: dict[str, list[str]] = {}

    def paint(row_key: str, start: float, end: float, ch: str) -> None:
        row = rows.setdefault(row_key, [" "] * width)
        c0 = min(width - 1, int(start * scale))
        c1 = min(width - 1, max(c0, int(end * scale) - 1))
        for c in range(c0, c1 + 1):
            row[c] = ch

    # Paint updates first so panel steps overwrite them at ties.
    any_batch = False
    for rec in sorted(trace.tasks, key=lambda r: r.task.step in (Step.T, Step.E)):
        any_batch = any_batch or rec.task.is_batch
        paint(rec.device_id, rec.start, rec.end, _task_char(rec.task))
    if include_transfers:
        for t in trace.transfers:
            paint(f"{t.src} ->", t.start, t.end, "-")

    label_w = max(len(k) for k in rows)
    lines = [
        f"{key.ljust(label_w)} |{''.join(row)}|"
        for key, row in sorted(rows.items())
    ]
    legend = "T=triangulation E=elimination u=UT x=UE -=transfer"
    if any_batch:
        legend += " U=UT batch X=UE batch"
    header = f"makespan: {span * 1e3:.3f} ms, {len(trace.tasks)} tasks, {len(trace.transfers)} transfers"
    tree = trace.meta.get("elimination")
    if tree:
        header += f", tree={tree}"
    return "\n".join([header, *lines, legend])


def to_chrome_trace(trace: ExecutionTrace, time_unit: float = 1e6) -> str:
    """Serialize to Chrome Trace Event JSON (open in chrome://tracing).

    Parameters
    ----------
    time_unit:
        Multiplier from simulated seconds to trace microseconds; the
        default treats simulated seconds as real seconds.
    """
    events = []
    for rec in trace.tasks:
        args = {"panel": rec.task.k, "col": rec.task.col}
        if rec.task.is_batch:
            # Coarsened row-panel record: expose the column range and the
            # number of fused per-tile updates instead of pretending it
            # was one tile.
            args["col_end"] = rec.task.col_end
            args["tiles"] = rec.task.ncols
        events.append(
            {
                "name": rec.task.label(),
                "cat": rec.task.step.value,
                "ph": "X",
                "ts": rec.start * time_unit,
                "dur": rec.duration * time_unit,
                "pid": "devices",
                "tid": rec.device_id,
                "args": args,
            }
        )
    for t in trace.transfers:
        events.append(
            {
                "name": t.tag or "transfer",
                "cat": "comm",
                "ph": "X",
                "ts": t.start * time_unit,
                "dur": t.duration * time_unit,
                "pid": "links",
                "tid": f"{t.src}->{t.dst}",
                "args": {"bytes": t.num_bytes},
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace.meta:
        # Provenance (elimination tree, runtime, grid, ...) lands in the
        # Trace Event metadata block Perfetto shows under "Info".
        doc["metadata"] = {
            k: v for k, v in trace.meta.items()
            if isinstance(v, (str, int, float, bool))
        }
    return json.dumps(doc, indent=1)
