"""Simulated execution of tiled QR on the modelled heterogeneous system.

Two fidelities, one report type:

* :class:`DiscreteEventSimulator` — task-level: every kernel occupies a
  device slot, every data movement occupies a link, the full DAG is
  respected.  Exact but O(tasks); practical for tile grids up to ~80x80.
* :func:`simulate_iteration_level` — panel-level: per-device clocks
  advanced one panel at a time with the same device/link models.
  O(panels x devices); used for the paper's 1000x1000-tile sweeps.

Tests cross-validate the two on small grids.
"""

from .trace import TaskRecord, TransferRecord, ExecutionTrace, SimulationReport
from .engine import DiscreteEventSimulator, simulate_task_level
from .iteration import simulate_iteration_level

__all__ = [
    "TaskRecord",
    "TransferRecord",
    "ExecutionTrace",
    "SimulationReport",
    "DiscreteEventSimulator",
    "simulate_task_level",
    "simulate_iteration_level",
]
