"""Task-level discrete-event simulation of tiled QR execution.

Models exactly what the paper's runtime (Fig. 7) does:

* every kernel occupies one slot of its assigned device for the device
  model's kernel time — panel steps chain through the DAG, update steps
  fan out across slots;
* every datum (tile, reflector factor set) lives on specific devices;
  a task may only start once its inputs are resident, and moving them
  occupies the source device's outgoing port (transfers from one device
  are serialized — the star topology of Fig. 1);
* transfers queued on a port toward the same destination are batched
  into one message (the manager thread moves a panel's worth of data at
  once), so latency is paid per batch, not per tile.

The simulator consumes the same :class:`~repro.core.plan.DistributionPlan`
as the numeric executor: panel tasks run on ``plan.panel_owner(k)``,
update tasks on ``plan.column_owner(col)``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict, deque

from ..comm.topology import Topology
from ..config import ELEMENT_SIZE_BYTES
from ..core.plan import DistributionPlan
from ..dag.builder import TiledQRDag
from ..dag.tasks import Step, Task
from ..devices.registry import SystemSpec
from ..errors import SimulationError
from .trace import ExecutionTrace, TaskRecord, TransferRecord


def _payload_bytes(key: tuple, tile_bytes: float) -> float:
    """Bytes of one data object, following the paper's Eq. 11 accounting:
    a tile or a GEQRT factor is one ``T^2`` payload, an elimination
    factor is two (``Q_t1`` and ``Q_t2``)."""
    if key[0] == "Ve":
        return 2.0 * tile_bytes
    return tile_bytes


class DiscreteEventSimulator:
    """Event-driven executor of a tiled-QR DAG on modelled devices.

    Parameters
    ----------
    system:
        Device models.
    topology:
        Link models between devices.
    element_size:
        Bytes per matrix element (paper uses 4 — single precision).
    """

    #: Ready-queue orderings selectable via ``policy``:
    #: ``critical-path`` (default) runs panel steps and next-panel-column
    #: updates first; ``fifo`` dispatches in become-ready order;
    #: ``column-major`` favours finishing whole columns left to right;
    #: ``reverse`` deliberately starves the critical path (a pessimal
    #: contrast for the scheduling ablation).
    POLICIES = ("critical-path", "fifo", "column-major", "reverse")

    def __init__(
        self,
        system: SystemSpec,
        topology: Topology,
        element_size: int = ELEMENT_SIZE_BYTES,
        panel_unit: bool = True,
        policy: str = "critical-path",
    ):
        self.system = system
        self.topology = topology
        self.element_size = element_size
        #: When True (default), each device runs panel steps (T/E) on a
        #: dedicated capacity-1 engine: GPU kernels are non-preemptive
        #: and the panel factorization is a serial chain (paper Secs. I
        #: and III-A).  Setting False lets panel tasks share the update
        #: slots — an idealized fully-parallel runtime, used as an
        #: ablation of how much lookahead scheduling would buy.
        self.panel_unit = panel_unit
        if policy not in self.POLICIES:
            raise SimulationError(
                f"unknown scheduling policy {policy!r}; choose from {self.POLICIES}"
            )
        self.policy = policy

    # -- public API -------------------------------------------------------

    def run(
        self,
        dag: TiledQRDag,
        plan: DistributionPlan,
        tiles=None,
    ) -> ExecutionTrace:
        """Simulate the DAG under ``plan`` and return the full trace.

        Parameters
        ----------
        tiles:
            Optional :class:`~repro.tiles.TiledMatrix` holding real data.
            When given, every simulated kernel *also executes numerically*
            at its completion event (completion order is a valid
            topological order), so one pass yields both the factorization
            and its timeline — virtual-time co-execution.  The matrix is
            mutated in place into the R factor; the produced reflector
            log is stored on ``trace.numeric_log``.
        """
        b = plan.tile_size
        tile_bytes = float(b * b * self.element_size)
        devices = {d: self.system.device(d) for d in plan.participants}

        def assign(task: Task) -> str:
            if task.step in (Step.T, Step.E):
                return plan.panel_owner(task.k)
            return plan.column_owner(task.col)

        # --- state -------------------------------------------------------
        trace = ExecutionTrace()
        numeric_factors: dict[tuple, object] = {}
        numeric_log: list = []
        if tiles is not None:
            if (tiles.grid_rows, tiles.grid_cols) != (dag.grid_rows, dag.grid_cols):
                raise SimulationError(
                    f"tile grid {tiles.grid_shape} does not match DAG "
                    f"{dag.grid_rows}x{dag.grid_cols}"
                )
        dep_remaining = {t: len(dag.preds[t]) for t in dag.tasks}
        location: dict[tuple, set[str]] = defaultdict(set)
        # Initial residency: column j's tiles start on their owner.
        for j in range(dag.grid_cols):
            owner = plan.column_owner(j)
            for i in range(dag.grid_rows):
                location[("t", i, j)].add(owner)

        # Pre-seed data produced *outside* this DAG (e.g. factorization
        # factors consumed by a solve DAG): any key read but never
        # written lands where its producing panel would have run.
        written_keys = set()
        for t in dag.tasks:
            written_keys.update(dag.accesses(t)[1])
        for t in dag.tasks:
            for key in dag.accesses(t)[0]:
                if key[0] in ("Vg", "Ve") and key not in written_keys:
                    if not location[key]:
                        location[key].add(plan.panel_owner(key[2]))

        ready_heap: dict[str, list] = {d: [] for d in devices}
        panel_heap: dict[str, list] = {d: [] for d in devices}
        busy_slots = {d: 0 for d in devices}
        panel_busy = {d: False for d in devices}
        pending_inputs: dict[Task, int] = {}
        waiters: dict[tuple[tuple, str], list[Task]] = defaultdict(list)
        port_queue: dict[str, deque] = {d: deque() for d in devices}
        port_busy = {d: False for d in devices}

        clock = 0.0
        events: list = []
        seq = itertools.count()

        ready_seq = itertools.count()

        def priority(task: Task) -> tuple:
            if self.policy == "fifo":
                return (next(ready_seq),)
            if self.policy == "column-major":
                return (task.col, task.k, task.row)
            if self.policy == "reverse":
                panel = 1 if task.step in (Step.T, Step.E) else 0
                return (-task.k, panel, -task.col, task.row)
            # critical-path (default)
            panel = 0 if task.step in (Step.T, Step.E) else 1
            next_col = 0 if task.col == task.k + 1 else 1
            return (task.k, panel, next_col, task.col, task.row)

        def push_event(time: float, kind: str, payload) -> None:
            heapq.heappush(events, (time, next(seq), kind, payload))

        def is_panel_task(task: Task) -> bool:
            return self.panel_unit and task.step in (Step.T, Step.E)

        def make_runnable(task: Task) -> None:
            dev = assign(task)
            heap = panel_heap[dev] if is_panel_task(task) else ready_heap[dev]
            heapq.heappush(heap, (priority(task), task))
            dispatch(dev)

        def dispatch(dev: str) -> None:
            spec = devices[dev]
            if not panel_busy[dev] and panel_heap[dev]:
                _, task = heapq.heappop(panel_heap[dev])
                panel_busy[dev] = True
                duration = spec.time(task.step, b)
                push_event(clock + duration, "task_done", (task, dev, clock))
            while busy_slots[dev] < spec.slots and ready_heap[dev]:
                _, task = heapq.heappop(ready_heap[dev])
                busy_slots[dev] += 1
                duration = spec.time(task.step, b)
                push_event(clock + duration, "task_done", (task, dev, clock))

        def pump_port(src: str) -> None:
            """Start the next transfer batch on ``src``'s outgoing port."""
            if port_busy[src] or not port_queue[src]:
                return
            # Batch every queued request toward the head's destination.
            head_key, head_dst = port_queue[src][0]
            batch = [(head_key, head_dst)]
            rest = deque()
            port_queue[src].popleft()
            while port_queue[src]:
                key, dst = port_queue[src].popleft()
                if dst == head_dst:
                    batch.append((key, dst))
                else:
                    rest.append((key, dst))
            port_queue[src] = rest
            total_bytes = sum(_payload_bytes(k, tile_bytes) for k, _ in batch)
            duration = self.topology.transfer_time(src, head_dst, total_bytes, messages=1)
            port_busy[src] = True
            push_event(clock + duration, "xfer_done", (src, head_dst, batch, clock, total_bytes))

        def request_input(key: tuple, dst: str, task: Task) -> None:
            waiters[(key, dst)].append(task)
            if len(waiters[(key, dst)]) > 1:
                return  # already in flight
            holders = location[key]
            if not holders:
                raise SimulationError(f"datum {key} needed by {task} has no producer copy")
            src = next(iter(holders))
            port_queue[src].append((key, dst))
            pump_port(src)

        def stage(task: Task) -> None:
            """Called when DAG deps are satisfied; moves inputs then runs."""
            dev = assign(task)
            reads, _writes = dag.accesses(task)
            missing = [k for k in dict.fromkeys(reads) if dev not in location[k]]
            if not missing:
                make_runnable(task)
                return
            pending_inputs[task] = len(missing)
            for key in missing:
                request_input(key, dev, task)

        def complete_task(task: Task, dev: str, start: float) -> None:
            if is_panel_task(task):
                panel_busy[dev] = False
            else:
                busy_slots[dev] -= 1
            trace.tasks.append(TaskRecord(task=task, device_id=dev, start=start, end=clock))
            if tiles is not None:
                from ..runtime.core_exec import apply_task

                produced = apply_task(task, tiles, numeric_factors)
                if produced is not None:
                    numeric_log.append((task, produced))
            _reads, writes = dag.accesses(task)
            for key in writes:
                location[key] = {dev}
            for succ in dag.succs[task]:
                dep_remaining[succ] -= 1
                if dep_remaining[succ] == 0:
                    stage(succ)
            dispatch(dev)

        def complete_transfer(src: str, dst: str, batch, start: float, nbytes: float) -> None:
            port_busy[src] = False
            trace.transfers.append(
                TransferRecord(
                    src=src, dst=dst, num_bytes=nbytes, start=start, end=clock,
                    tag="+".join(sorted({k[0] for k, _ in batch})),
                )
            )
            for key, _ in batch:
                location[key].add(dst)
                for task in waiters.pop((key, dst), []):
                    pending_inputs[task] -= 1
                    if pending_inputs[task] == 0:
                        del pending_inputs[task]
                        make_runnable(task)
            pump_port(src)

        # --- main loop -----------------------------------------------------
        for t in dag.tasks:
            if dep_remaining[t] == 0:
                stage(t)
        completed = 0
        total = len(dag.tasks)
        while events:
            clock, _, kind, payload = heapq.heappop(events)
            if kind == "task_done":
                complete_task(*payload)
                completed += 1
            else:
                complete_transfer(*payload)
        if completed != total:
            raise SimulationError(
                f"simulation deadlocked: {completed}/{total} tasks completed"
            )
        if tiles is not None:
            trace.numeric_log = numeric_log
        return trace


def simulate_task_level(
    dag: TiledQRDag,
    plan: DistributionPlan,
    system: SystemSpec,
    topology: Topology,
    element_size: int = ELEMENT_SIZE_BYTES,
    panel_unit: bool = True,
) -> ExecutionTrace:
    """One-call wrapper around :class:`DiscreteEventSimulator`."""
    return DiscreteEventSimulator(
        system, topology, element_size, panel_unit=panel_unit
    ).run(dag, plan)
