"""Execution traces and summary reports produced by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dag.tasks import Step, Task
from ..errors import SimulationError


@dataclass(frozen=True)
class TaskRecord:
    """One executed kernel: where and when."""

    task: Task
    device_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class AnnotationRecord:
    """One out-of-band runtime event (resilience, lifecycle markers).

    Annotations never affect makespan/compute/communication accounting —
    they exist so a trace *shows what happened* around the kernels:
    retries, injected faults, failovers, checkpoints.
    """

    kind: str  # "retry" | "fault" | "failover" | "timeout" | "checkpoint" | ...
    label: str
    device: str
    t: float = 0.0


@dataclass(frozen=True)
class TransferRecord:
    """One data movement over a link."""

    src: str
    dst: str
    num_bytes: float
    start: float
    end: float
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationReport:
    """Aggregate outcome every simulator produces.

    Attributes
    ----------
    makespan:
        Wall-clock seconds for the whole factorization.
    compute_busy:
        Per-device total seconds spent inside kernels (slot-seconds).
    comm_time:
        Total seconds of link occupation across all transfers.
    num_tasks, num_transfers:
        Volume counters.
    meta:
        Free-form details (grid, plan description, fidelity).
    """

    makespan: float
    compute_busy: dict[str, float]
    comm_time: float
    num_tasks: int = 0
    num_transfers: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def total_compute(self) -> float:
        return sum(self.compute_busy.values())

    @property
    def comm_fraction(self) -> float:
        """Share of communication in total busy time (paper Fig. 5)."""
        denom = self.comm_time + self.total_compute
        if denom <= 0.0:
            return 0.0
        return self.comm_time / denom

    def utilization(self, slots: dict[str, int]) -> dict[str, float]:
        """Per-device slot utilization: busy / (slots x makespan)."""
        if self.makespan <= 0.0:
            return {d: 0.0 for d in self.compute_busy}
        return {
            d: busy / (slots[d] * self.makespan)
            for d, busy in self.compute_busy.items()
        }


@dataclass
class ExecutionTrace:
    """Full task-level trace (discrete-event simulator output).

    ``numeric_log`` is populated only by virtual-time co-execution
    (:meth:`repro.sim.engine.DiscreteEventSimulator.run` with real
    tiles): the chronological reflector log, same contract as
    :attr:`repro.runtime.factorization.TiledQRFactorization.log`.

    ``meta`` carries run provenance (elimination tree, runtime, grid,
    ...) — populated from the JSONL header on load and by the CLI on
    record; :func:`repro.observability.diff_traces` refuses to compare
    traces whose recorded elimination trees differ.
    """

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    numeric_log: list = field(default_factory=list)
    annotations: list[AnnotationRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        ends = [t.end for t in self.tasks] + [t.end for t in self.transfers]
        return max(ends, default=0.0)

    def compute_busy(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for rec in self.tasks:
            out[rec.device_id] = out.get(rec.device_id, 0.0) + rec.duration
        return out

    def comm_time(self) -> float:
        return sum(t.duration for t in self.transfers)

    def step_time(self) -> dict[Step, float]:
        """Total kernel seconds by paper step."""
        out = {s: 0.0 for s in Step}
        for rec in self.tasks:
            out[rec.task.step] += rec.duration
        return out

    def report(self, **meta) -> SimulationReport:
        """Summarize into a :class:`SimulationReport`."""
        return SimulationReport(
            makespan=self.makespan,
            compute_busy=self.compute_busy(),
            comm_time=self.comm_time(),
            num_tasks=len(self.tasks),
            num_transfers=len(self.transfers),
            meta={"fidelity": "task-level", **meta},
        )

    def validate_no_overlap(self, slots: dict[str, int], panel_unit: bool = True) -> None:
        """Assert no device ever runs more kernels than it has capacity.

        Update kernels are checked against the device's slot count; when
        ``panel_unit`` is set (the simulator default), panel kernels
        (T/E) are checked against their dedicated capacity-1 engine.
        Sweep-line over task records; raises :class:`SimulationError` on
        overcommit.  Used by the simulator's tests as a conservation law.
        """

        def check(records: list[TaskRecord], capacity: dict[str, int], label: str) -> None:
            events: dict[str, list[tuple[float, int]]] = {}
            for rec in records:
                events.setdefault(rec.device_id, []).append((rec.start, +1))
                events.setdefault(rec.device_id, []).append((rec.end, -1))
            for dev, evs in events.items():
                evs.sort(key=lambda e: (e[0], e[1]))  # ends before starts at ties
                level = 0
                for _t, delta in evs:
                    level += delta
                    if level > capacity[dev]:
                        raise SimulationError(
                            f"device {dev} overcommitted on {label}: "
                            f"{level} > {capacity[dev]}"
                        )

        if panel_unit:
            panel = [r for r in self.tasks if r.task.step in (Step.T, Step.E)]
            updates = [r for r in self.tasks if r.task.step not in (Step.T, Step.E)]
            check(panel, {d: 1 for d in slots}, "panel unit")
            check(updates, slots, "update slots")
        else:
            check(self.tasks, slots, "slots")

    def gantt_rows(self) -> list[tuple[str, str, float, float]]:
        """``(device, label, start, end)`` rows for plotting/reporting."""
        rows = [
            (rec.device_id, rec.task.label(), rec.start, rec.end) for rec in self.tasks
        ]
        rows += [
            (f"{t.src}->{t.dst}", t.tag or "xfer", t.start, t.end)
            for t in self.transfers
        ]
        rows.sort(key=lambda r: (r[0], r[2]))
        return rows
