"""Fast panel-iteration-level simulator.

The paper's large experiments use matrices up to 16000x16000 — a
1000x1000 tile grid whose task DAG (~3.3e8 tasks) is far beyond what a
task-level simulator can replay.  This simulator advances per-device
clocks one *panel* at a time using the identical device and link models:

1. the panel owner receives the panel column from its owner (one
   batched message), then runs the sequential T + elimination chain;
2. it broadcasts the reflector factors to every participating device,
   serialized on its outgoing port (Eq. 11's sum over devices);
3. every device updates its owned right-of-panel columns with all its
   slots, updating the *next panel's column first* so the panel chain of
   iteration ``k+1`` can start while other columns lag (the pipelining a
   task-level scheduler achieves).

Cross-validated against the discrete-event simulator on small grids in
``tests/test_sim_cross_validation.py``.
"""

from __future__ import annotations

from ..comm.topology import Topology
from ..config import ELEMENT_SIZE_BYTES
from ..core.plan import DistributionPlan
from ..dag.tasks import Step
from ..devices.registry import SystemSpec
from ..errors import SimulationError
from .trace import SimulationReport


def simulate_iteration_level(
    plan: DistributionPlan,
    grid_rows: int,
    grid_cols: int,
    system: SystemSpec | None = None,
    topology: Topology | None = None,
    element_size: int = ELEMENT_SIZE_BYTES,
) -> SimulationReport:
    """Simulate a full tiled QR at panel granularity.

    Parameters
    ----------
    plan:
        Distribution plan (also carries the system unless overridden).
    grid_rows, grid_cols:
        Tile-grid shape ``(p, q)``.
    system, topology:
        Override the plan's system / default star topology.

    Returns
    -------
    SimulationReport
        ``meta["fidelity"] == "iteration-level"``.
    """
    if grid_rows < 1 or grid_cols < 1:
        raise SimulationError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
    sysm = system if system is not None else plan.system
    if topology is None:
        from ..comm.topology import pcie_star

        topology = pcie_star(sysm.devices)
    b = plan.tile_size
    tile_bytes = float(b * b * element_size)
    devices = {d: sysm.device(d) for d in plan.participants}

    clock = {d: 0.0 for d in devices}       # compute timeline per device
    port = {d: 0.0 for d in devices}        # outgoing-port timeline
    busy = {d: 0.0 for d in devices}        # accumulated kernel seconds
    comm_time = 0.0
    num_transfers = 0
    prev_panel_end = 0.0

    # When is column k's data ready, and where does it live?
    col_ready = {0: 0.0}
    col_home = {0: plan.column_owner(0)}

    n_panels = min(grid_rows, grid_cols)
    for k in range(n_panels):
        m_k = grid_rows - k
        owner_p = plan.panel_owner(k)
        spec_p = devices[owner_p]

        # -- 1. panel column arrives at the panel owner -------------------
        ready = col_ready.get(k, 0.0)
        home = col_home.get(k, plan.column_owner(k))
        if home != owner_p:
            xfer = topology.transfer_time(home, owner_p, m_k * tile_bytes, messages=1)
            start = max(ready, port[home])
            port[home] = start + xfer
            comm_time += xfer
            num_transfers += 1
            ready = start + xfer

        # -- 2. sequential T + elimination chain --------------------------
        # Chain-priority: the critical-path panel work starts as soon as
        # its column is ready and the previous chain is done; update
        # kernels queued on the same device are displaced behind it
        # (devices execute kernels serially, paper Sec. I, so the chain
        # simply jumps the device's update queue).
        chain = spec_p.time(Step.T, b) + (m_k - 1) * spec_p.time(Step.E, b)
        panel_start = max(ready, prev_panel_end)
        panel_end = panel_start + chain
        prev_panel_end = panel_end
        busy[owner_p] += chain
        if clock[owner_p] > panel_start:
            clock[owner_p] += chain  # displaced update work slides back
        else:
            clock[owner_p] = panel_end

        # -- 3. factor broadcast, serialized on the owner's port ----------
        # Only devices with update work left receive the factors (a
        # participant whose columns are exhausted gets nothing).
        arrive = {owner_p: panel_end}
        port[owner_p] = max(port[owner_p], panel_end)
        for d in plan.participants:
            if d == owner_p:
                continue
            if not plan.columns_of(d, grid_cols, k + 1):
                continue
            payload = 3.0 * m_k * tile_bytes  # M T^2 after T + 2 M T^2 after E
            xfer = topology.transfer_time(owner_p, d, payload, messages=2)
            port[owner_p] += xfer
            comm_time += xfer
            num_transfers += 2
            arrive[d] = port[owner_p]

        # -- 4. updates: every device chews its owned columns -------------
        next_col = k + 1
        if next_col < grid_cols:
            next_owner_upd = plan.column_owner(next_col)
        else:
            next_owner_upd = None
        per_col = {
            d: (devices[d].time(Step.UT, b) + (m_k - 1) * devices[d].time(Step.UE, b))
            / devices[d].slots
            for d in devices
        }
        for d in plan.participants:
            cols = plan.columns_of(d, grid_cols, k + 1)
            if not cols:
                continue
            start = max(clock[d], arrive[d])
            if d == next_owner_upd:
                # Next panel's column is updated first.
                col_done = start + per_col[d]
                col_ready[next_col] = col_done
                col_home[next_col] = d
            clock[d] = start + len(cols) * per_col[d]
            busy[d] += len(cols) * per_col[d]
        if next_col < grid_cols and next_col not in col_ready:
            # Owner had no work this panel beyond the next column itself
            # (can happen when it owns only that column) — handled above;
            # reaching here means nobody owns it, which is impossible.
            raise SimulationError(f"column {next_col} never updated")

    makespan = max(max(clock.values()), max(port.values()))
    return SimulationReport(
        makespan=makespan,
        compute_busy=busy,
        comm_time=comm_time,
        num_tasks=0,
        num_transfers=num_transfers,
        meta={
            "fidelity": "iteration-level",
            "grid": (grid_rows, grid_cols),
            "plan": plan.describe(),
        },
    )
