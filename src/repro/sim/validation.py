"""Trace validators: the simulator's conservation laws as library code.

Every law the test suite holds the simulators to is available here for
user traces too (e.g. after custom plans or modified device models):

* task starts respect the DAG's dependency edges;
* no device exceeds its update slots, and panel kernels respect the
  capacity-1 panel engine;
* transfers out of one device never overlap (star topology ports);
* every DAG task executed exactly once, on the device the plan assigns.
"""

from __future__ import annotations

from ..core.plan import DistributionPlan
from ..dag.builder import TiledQRDag
from ..dag.tasks import Step
from ..devices.registry import SystemSpec
from ..errors import SimulationError
from .trace import ExecutionTrace


def validate_dependencies(trace: ExecutionTrace, dag: TiledQRDag) -> None:
    """Every task starts only after all its DAG predecessors finished."""
    end_of = {r.task: r.end for r in trace.tasks}
    start_of = {r.task: r.start for r in trace.tasks}
    missing = [t for t in dag.tasks if t not in start_of]
    if missing:
        raise SimulationError(f"{len(missing)} DAG tasks never executed, e.g. {missing[0]}")
    for t in dag.tasks:
        for d in dag.preds[t]:
            if start_of[t] < end_of[d] - 1e-12:
                raise SimulationError(
                    f"dependency violated: {t.label()} started at "
                    f"{start_of[t]:.6g} before {d.label()} ended at {end_of[d]:.6g}"
                )


def validate_assignment(trace: ExecutionTrace, plan: DistributionPlan) -> None:
    """Every kernel ran on the device the plan assigns it to."""
    for rec in trace.tasks:
        t = rec.task
        expected = (
            plan.panel_owner(t.k) if t.step in (Step.T, Step.E)
            else plan.column_owner(t.col)
        )
        if rec.device_id != expected:
            raise SimulationError(
                f"{t.label()} ran on {rec.device_id}, plan says {expected}"
            )


def validate_ports(trace: ExecutionTrace) -> None:
    """Outgoing transfers from one device are serialized."""
    by_src: dict[str, list[tuple[float, float]]] = {}
    for tr in trace.transfers:
        by_src.setdefault(tr.src, []).append((tr.start, tr.end))
    for src, spans in by_src.items():
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            if s2 < e1 - 1e-12:
                raise SimulationError(f"overlapping transfers out of {src}")


def validate_trace(
    trace: ExecutionTrace,
    dag: TiledQRDag,
    plan: DistributionPlan,
    system: SystemSpec | None = None,
    panel_unit: bool = True,
) -> None:
    """Run every conservation law; raises :class:`SimulationError` on the
    first violation.  ``system`` enables the slot-capacity sweep."""
    validate_dependencies(trace, dag)
    validate_assignment(trace, plan)
    validate_ports(trace)
    if system is not None:
        trace.validate_no_overlap(
            {d.device_id: d.slots for d in system}, panel_unit=panel_unit
        )
