"""Row-block (communication-avoiding-QR-style) distribution simulator.

The paper's related work (Sec. VII, refs. [12, 13]) distributes *rows*
to processors and reduces each panel with a TSQR tree, instead of the
paper's column distribution with a single main device.  This simulator
models that scheme with the same device and link models so the two
approaches are directly comparable (`repro.experiments.caqr_comparison`):

per panel ``k``
  1. every device factorizes its own rows of the panel locally
     (GEQRT + local TSQRT chain) — *in parallel across devices*;
  2. the per-device R factors merge up a binary tree (one R+V payload
     per merge, TTQRT on the receiving device);
  3. each device updates its own rows of the trailing columns locally;
     each tree merge additionally requires the paired devices to
     exchange their head tile row of every trailing column and apply the
     TTMQR (computed redundantly on both sides, the standard CA-QR
     trick to avoid a second message).

Row ownership is either ``"contiguous"`` bands (sized by update
throughput) — which exposes the load-balance decay the paper alludes to
("we use a column by column tile distribution, which is easy for load
balancing"): top bands run out of rows as panels advance — or
``"cyclic"`` block-row-cyclic, the CA literature's fix.
"""

from __future__ import annotations

from ..comm.topology import Topology
from ..config import ELEMENT_SIZE_BYTES
from ..core.guide_array import integer_ratio
from ..dag.tasks import Step
from ..devices.registry import SystemSpec
from ..errors import SimulationError
from .trace import SimulationReport


def assign_rows(
    system: SystemSpec,
    participants: list[str],
    grid_rows: int,
    tile_size: int,
    layout: str = "cyclic",
) -> dict[str, list[int]]:
    """Map tile rows to devices.

    ``"contiguous"`` hands each device one band with size proportional
    to its update throughput; ``"cyclic"`` deals rows round-robin
    weighted by the same integer ratio (block-row cyclic).
    """
    if layout not in ("contiguous", "cyclic"):
        raise SimulationError(f"unknown row layout {layout!r}")
    thr = [system.device(d).update_throughput(tile_size) for d in participants]
    ratio = integer_ratio(thr)
    total = sum(ratio)
    rows: dict[str, list[int]] = {d: [] for d in participants}
    if layout == "contiguous":
        start = 0
        for i, d in enumerate(participants):
            count = round(grid_rows * ratio[i] / total)
            if i == len(participants) - 1:
                count = grid_rows - start
            rows[d] = list(range(start, min(start + count, grid_rows)))
            start += count
    else:
        # Weighted round-robin over a cyclic pattern of length sum(ratio).
        pattern: list[str] = []
        budget = list(ratio)
        while any(budget):
            for i, d in enumerate(participants):
                if budget[i] > 0:
                    pattern.append(d)
                    budget[i] -= 1
        for r in range(grid_rows):
            rows[pattern[r % len(pattern)]].append(r)
    return rows


def simulate_rowblock_level(
    system: SystemSpec,
    participants: list[str],
    grid_rows: int,
    grid_cols: int,
    tile_size: int,
    topology: Topology,
    element_size: int = ELEMENT_SIZE_BYTES,
    layout: str = "cyclic",
) -> SimulationReport:
    """Simulate tiled QR under row-block distribution with panel trees."""
    if grid_rows < 1 or grid_cols < 1:
        raise SimulationError(f"grid must be at least 1x1, got {grid_rows}x{grid_cols}")
    if not participants:
        raise SimulationError("need at least one participant")
    devices = {d: system.device(d) for d in participants}
    rows_of = assign_rows(system, participants, grid_rows, tile_size, layout)
    b = tile_size
    tile_bytes = float(b * b * element_size)

    clock = {d: 0.0 for d in participants}
    busy = {d: 0.0 for d in participants}
    comm_time = 0.0
    num_transfers = 0

    n_panels = min(grid_rows, grid_cols)
    for k in range(n_panels):
        n_right = grid_cols - k - 1
        live_rows = {d: [r for r in rows_of[d] if r >= k] for d in participants}
        active = [d for d in participants if live_rows[d]]
        if not active:
            raise SimulationError(f"no rows left at panel {k}")

        # -- 1. local panel factorization (parallel across devices) -------
        local_end = {}
        for d in active:
            spec = devices[d]
            m_d = len(live_rows[d])
            chain = spec.time(Step.T, b) + (m_d - 1) * spec.time(Step.E, b)
            start = clock[d]
            local_end[d] = start + chain
            clock[d] = local_end[d]
            busy[d] += chain

        # -- 2. binary merge tree over active devices ----------------------
        merge_pairs: list[tuple[str, str]] = []
        order = list(active)
        ready_at = dict(local_end)
        dist = 1
        while dist < len(order):
            for i in range(0, len(order) - dist, 2 * dist):
                dst, src = order[i], order[i + dist]
                merge_pairs.append((dst, src))
                xfer = topology.transfer_time(src, dst, 2.0 * tile_bytes, messages=1)
                t_merge = devices[dst].time(Step.E, b)
                start = max(ready_at[dst], ready_at[src])
                ready_at[dst] = start + xfer + t_merge
                comm_time += xfer
                num_transfers += 1
                busy[dst] += t_merge
                clock[dst] = max(clock[dst], ready_at[dst])
            dist *= 2

        # -- 3. trailing updates -------------------------------------------
        if n_right > 0:
            for d in active:
                spec = devices[d]
                m_d = len(live_rows[d])
                # One UT for the device's top row + UE for the rest, per column.
                per_col = (
                    spec.time(Step.UT, b) + max(m_d - 1, 0) * spec.time(Step.UE, b)
                ) / spec.slots
                work = n_right * per_col
                clock[d] = max(clock[d], local_end[d]) + work
                busy[d] += work
            # Tree-update exchanges: per merge pair, one head-row payload
            # each way-equivalent plus the redundant TTMQR on both sides.
            for dst, src in merge_pairs:
                xfer = topology.transfer_time(
                    src, dst, n_right * tile_bytes, messages=1
                )
                comm_time += xfer
                num_transfers += 1
                start = max(clock[dst], clock[src]) + xfer
                for d in (dst, src):
                    spec = devices[d]
                    work = n_right * spec.time(Step.UE, b) / spec.slots
                    clock[d] = max(clock[d], start) + work
                    busy[d] += work

    makespan = max(clock.values())
    return SimulationReport(
        makespan=makespan,
        compute_busy=busy,
        comm_time=comm_time,
        num_transfers=num_transfers,
        meta={
            "fidelity": "rowblock-level",
            "layout": layout,
            "grid": (grid_rows, grid_cols),
        },
    )
