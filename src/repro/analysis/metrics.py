"""Performance metrics used when reporting experiment results."""

from __future__ import annotations

from ..kernels.flops import flops_tiled_qr


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Classic ``t_base / t_new``; > 1 means the new variant is faster."""
    if improved_seconds <= 0:
        raise ValueError("improved time must be positive")
    return baseline_seconds / improved_seconds


def parallel_efficiency(t_serial: float, t_parallel: float, workers: int) -> float:
    """``speedup / workers`` in [0, 1] for well-behaved scaling."""
    if workers < 1:
        raise ValueError("need at least one worker")
    return speedup(t_serial, t_parallel) / workers


def achieved_gflops(n: int, tile_size: int, seconds: float, elimination: str = "TS") -> float:
    """Sustained GFLOP/s of a tiled QR of an ``n x n`` matrix."""
    if seconds <= 0:
        raise ValueError("time must be positive")
    grid = -(-n // tile_size)
    return flops_tiled_qr(grid, grid, tile_size, elimination) / seconds / 1e9


def weak_scaling_efficiency(
    t_small: float, n_small: int, t_large: float, n_large: int, workers_ratio: float
) -> float:
    """Efficiency when problem size grows with machine size.

    Uses the cubic work model of QR: perfect weak scaling keeps
    ``t * workers / n^3`` constant.
    """
    if min(t_small, t_large, n_small, n_large, workers_ratio) <= 0:
        raise ValueError("all inputs must be positive")
    work_ratio = (n_large / n_small) ** 3
    return (t_small * work_ratio) / (t_large * workers_ratio)


def amdahl_bound(serial_fraction: float, workers: float) -> float:
    """Amdahl's-law speedup bound for a given serial fraction.

    The tiled-QR panel chain is the serial fraction here; this bound is
    what the paper's main-device design is pushing against.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if workers < 1:
        raise ValueError("need at least one worker")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)
