"""Plain-text tables and charts for experiment output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output consistent and
readable in a terminal (no plotting dependencies).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted with ``float_fmt``, everything
        else with ``str``.
    title:
        Optional heading printed above the table.
    """
    def fmt(v) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float], unit: str = "") -> str:
    """One labelled x/y series as a compact two-line block."""
    xs_s = " ".join(str(x) for x in xs)
    ys_s = " ".join(f"{y:.4g}" for y in ys)
    suffix = f" [{unit}]" if unit else ""
    return f"{name}{suffix}:\n  x: {xs_s}\n  y: {ys_s}"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    logy: bool = False,
) -> str:
    """Rough ASCII scatter of several series (figures in a terminal).

    Parameters
    ----------
    series:
        ``label -> (xs, ys)``.
    logy:
        Plot ``log10(y)`` (the paper's Fig. 8 is log-log-ish).
    """
    import math

    pts = []
    for label, (xs, ys) in series.items():
        mark = label[0].upper()
        for x, y in zip(xs, ys):
            yy = math.log10(y) if logy and y > 0 else y
            pts.append((float(x), float(yy), mark))
    if not pts:
        return "(empty chart)"
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, mark in pts:
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        grid[row][col] = mark
    legend = "  ".join(f"{label[0].upper()}={label}" for label in series)
    body = "\n".join("|" + "".join(r) for r in grid)
    axis = "+" + "-" * width
    return f"{body}\n{axis}\n{legend}" + ("  (log y)" if logy else "")
