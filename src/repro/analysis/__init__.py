"""Analysis helpers: performance metrics and plain-text reporting."""

from .metrics import (
    speedup,
    parallel_efficiency,
    achieved_gflops,
    weak_scaling_efficiency,
    amdahl_bound,
)
from .reporting import format_table, format_series, ascii_chart
from .roofline import (
    arithmetic_intensity,
    kernel_bytes,
    roofline,
    ridge_tile_size,
    RooflinePoint,
)
from .energy import EnergyReport, energy_report, device_power

__all__ = [
    "speedup",
    "parallel_efficiency",
    "achieved_gflops",
    "weak_scaling_efficiency",
    "amdahl_bound",
    "format_table",
    "format_series",
    "ascii_chart",
    "arithmetic_intensity",
    "kernel_bytes",
    "roofline",
    "ridge_tile_size",
    "RooflinePoint",
    "EnergyReport",
    "energy_report",
    "device_power",
]
