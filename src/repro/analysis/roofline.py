"""Arithmetic intensity and roofline positioning of the tile kernels.

Explains *why* the paper's Fig. 4 curves look the way they do: at small
tile sizes every kernel is overhead/bandwidth bound (flat GPU curves),
and intensity grows linearly with ``b`` until the cubic flops dominate.
Given a device's sustained rate and an assumed memory bandwidth, the
ridge point tells which tile sizes can possibly run compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dag.tasks import Step
from ..devices.model import DeviceSpec
from ..kernels.flops import flops_geqrt, flops_tsmqr, flops_tsqrt, flops_unmqr


def kernel_bytes(step: Step, b: int, element_size: int = 8) -> float:
    """Bytes a kernel touches (reads + writes), tiled working set.

    GEQRT: the tile in/out plus V/Tf out (~3 tiles).
    UNMQR: C in/out plus V/Tf in (~4 tiles).
    TSQRT: two tiles in/out plus V2/Tf out (~6 tiles).
    TSMQR: two tiles in/out plus V2/Tf in (~6 tiles).
    """
    tile = b * b * element_size
    factor = {Step.T: 3, Step.UT: 4, Step.E: 6, Step.UE: 6}[step]
    return float(factor * tile)


_STEP_FLOPS = {
    Step.T: flops_geqrt,
    Step.E: flops_tsqrt,
    Step.UT: flops_unmqr,
    Step.UE: flops_tsmqr,
}


def arithmetic_intensity(step: Step, b: int, element_size: int = 8) -> float:
    """Flops per byte for one tile kernel — grows linearly in ``b``."""
    if b < 1:
        raise ValueError(f"tile size must be >= 1, got {b}")
    return _STEP_FLOPS[step](b) / kernel_bytes(step, b, element_size)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against a device roofline.

    Attributes
    ----------
    intensity:
        Flops/byte of the kernel at this tile size.
    attainable_flops:
        ``min(peak, bandwidth * intensity)`` — the roofline ceiling.
    compute_bound:
        True when the kernel sits right of the ridge.
    """

    step: Step
    tile_size: int
    intensity: float
    attainable_flops: float
    compute_bound: bool


def roofline(
    device: DeviceSpec,
    step: Step,
    tile_size: int,
    mem_bandwidth: float,
    element_size: int = 8,
) -> RooflinePoint:
    """Place one kernel on a device's roofline.

    Parameters
    ----------
    device:
        Supplies the sustained per-slot rate for ``step`` (the "peak").
    mem_bandwidth:
        Assumed device memory bandwidth in bytes/s.
    """
    if mem_bandwidth <= 0:
        raise ValueError("memory bandwidth must be positive")
    peak = device.timing.rates_flops[step]
    ai = arithmetic_intensity(step, tile_size, element_size)
    attainable = min(peak, mem_bandwidth * ai)
    return RooflinePoint(
        step=step,
        tile_size=tile_size,
        intensity=ai,
        attainable_flops=attainable,
        compute_bound=attainable >= peak,
    )


def ridge_tile_size(
    device: DeviceSpec,
    step: Step,
    mem_bandwidth: float,
    element_size: int = 8,
    max_b: int = 4096,
) -> int | None:
    """Smallest tile size at which ``step`` turns compute-bound, or
    ``None`` if it never does below ``max_b``."""
    b = 1
    while b <= max_b:
        if roofline(device, step, b, mem_bandwidth, element_size).compute_bound:
            return b
        b *= 2
    return None
