"""Energy-to-solution modelling.

The paper optimizes wall-clock time; 2013-era GeForce boards draw
195-244 W, so the *energy*-optimal configuration can differ from the
time-optimal one: an extra GPU that shaves 10% off the makespan while
burning 195 W for the whole run may cost more joules than it saves.
Device power draws attach here (not on ``DeviceSpec`` — they are an
analysis concern, not a scheduling input) and a
:class:`~repro.sim.trace.SimulationReport` converts to joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.registry import SystemSpec
from ..sim.trace import SimulationReport

#: Manufacturer TDP (board power, watts) for the modelled devices, plus
#: an idle fraction: a powered-but-idle device still draws a share.
DEFAULT_TDP_W = {
    "GeForce GTX 580": 244.0,
    "GeForce GTX 680": 195.0,
    "Intel Core i7-3820": 130.0,
    "Tesla-K20-class GPU": 225.0,
    "Xeon-Phi-class coprocessor": 300.0,
}

#: Fraction of TDP drawn while idle but powered (2012-era boards).
DEFAULT_IDLE_FRACTION = 0.35


@dataclass(frozen=True)
class EnergyReport:
    """Joules spent by one simulated run.

    Attributes
    ----------
    active_joules:
        Energy of busy device time at full TDP.
    idle_joules:
        Energy of powered-but-idle time (participants only).
    """

    active_joules: float
    idle_joules: float
    makespan: float

    @property
    def total_joules(self) -> float:
        return self.active_joules + self.idle_joules

    @property
    def average_watts(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.total_joules / self.makespan


def device_power(system: SystemSpec, device_id: str, tdp_w: dict | None = None) -> float:
    """TDP lookup by device *name* with a 150 W fallback for unknowns."""
    table = tdp_w if tdp_w is not None else DEFAULT_TDP_W
    return float(table.get(system.device(device_id).name, 150.0))


def energy_report(
    report: SimulationReport,
    system: SystemSpec,
    tdp_w: dict | None = None,
    idle_fraction: float = DEFAULT_IDLE_FRACTION,
) -> EnergyReport:
    """Convert a simulation report into energy.

    Every device that appears in ``report.compute_busy`` is considered
    powered for the whole makespan.  TDP is *board* power, so a device's
    active draw scales with its slot utilization (busy slot-seconds over
    ``slots * makespan``); the remaining capacity idles at
    ``idle_fraction`` of TDP.
    """
    if not 0.0 <= idle_fraction <= 1.0:
        raise ValueError(f"idle fraction must be in [0, 1], got {idle_fraction}")
    active = 0.0
    idle = 0.0
    for dev, busy in report.compute_busy.items():
        p = device_power(system, dev, tdp_w)
        slots = system.device(dev).slots
        if report.makespan <= 0:
            continue
        util = min(1.0, busy / (slots * report.makespan))
        active += util * report.makespan * p
        idle += (1.0 - util) * report.makespan * p * idle_fraction
    return EnergyReport(
        active_joules=active, idle_joules=idle, makespan=report.makespan
    )
