"""Global configuration defaults for the tiled QR reproduction.

The paper fixes a handful of constants for its evaluation; they are
collected here so experiments, tests and benchmarks agree on them.

Attributes
----------
DEFAULT_TILE_SIZE
    The paper uses 16x16 tiles ("we use 16 by 16 because the number of
    cores of the CPU and GPUs are the power of 2", Sec. V).
DEFAULT_DTYPE
    The paper generates "random floating point numbers"; single precision
    on 2013 GeForce hardware.  We default to float64 for the numeric
    kernels (tests are tighter) but the *cost models* use
    ``ELEMENT_SIZE_BYTES = 4`` to match the paper's transfer volumes.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigError

#: Tile edge length used throughout the paper's evaluation.
DEFAULT_TILE_SIZE: int = 16

#: dtype used by the numeric kernels unless the caller overrides it.
DEFAULT_DTYPE = np.float64

#: size(element) in Eq. 11 — the paper transfers single-precision floats.
ELEMENT_SIZE_BYTES: int = 4

#: Default RNG seed so experiments are reproducible end to end.
DEFAULT_SEED: int = 20130742  # ICPP 2013, paper page 744

#: Relative Frobenius-norm tolerance for float64 reconstruction tests.
RECONSTRUCTION_RTOL_F64: float = 1e-10

#: Relative tolerance used when the kernels run in float32.
RECONSTRUCTION_RTOL_F32: float = 1e-4


def validate_tile_size(tile_size: int) -> int:
    """Validate a tile edge length and return it.

    Parameters
    ----------
    tile_size:
        Requested tile edge length (tiles are square).

    Raises
    ------
    ConfigError
        If ``tile_size`` is not a positive integer.
    """
    if not isinstance(tile_size, (int, np.integer)) or isinstance(tile_size, bool):
        raise ConfigError(f"tile size must be an int, got {tile_size!r}")
    if tile_size < 1:
        raise ConfigError(f"tile size must be >= 1, got {tile_size}")
    return int(tile_size)


def reconstruction_rtol(dtype) -> float:
    """Return the reconstruction tolerance appropriate for ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype == np.float32:
        return RECONSTRUCTION_RTOL_F32
    if dtype == np.float64:
        return RECONSTRUCTION_RTOL_F64
    raise ConfigError(f"unsupported dtype for QR kernels: {dtype}")
