#!/usr/bin/env python
"""Inspect the tiled-QR task DAG (paper Figs. 2-3).

Builds the 3x3 DAG the paper illustrates, prints its dependency pattern
step by step, writes a Graphviz rendering, and contrasts the flat-tree
(TS) and binary-tree (TT) elimination orders.

Run:  python examples/dag_visualization.py
"""

from pathlib import Path

from repro.dag import Step, build_dag, critical_path_length, max_parallelism
from repro.dag.export import to_dot, to_networkx

# --- the paper's 3x3 example (Fig. 2) --------------------------------------
dag = build_dag(3, 3)
print("3x3 tiled QR, flat-tree (TS) elimination — the paper's Fig. 2 flow:\n")
for task in dag.tasks:
    deps = ", ".join(d.label() for d in sorted(dag.preds[task])) or "(ready)"
    print(f"  {task.label():14s} <- {deps}")

print(f"\ntasks: {len(dag)}, critical path: {critical_path_length(dag):.0f} "
      f"tasks, max width: {max_parallelism(dag)}")

# --- export for Graphviz -----------------------------------------------------
out = Path(__file__).resolve().parent / "dag_3x3.dot"
out.write_text(to_dot(dag))
print(f"\nGraphviz rendering written to {out}")
print("render with:  dot -Tpng dag_3x3.dot -o dag_3x3.png")

# --- networkx interop ---------------------------------------------------------
g = to_networkx(dag)
import networkx as nx

print(f"networkx: {g.number_of_nodes()} nodes, {g.number_of_edges()} edges, "
      f"DAG: {nx.is_directed_acyclic_graph(g)}")
longest = nx.dag_longest_path(g)
print("longest dependency chain:", " -> ".join(t.label() for t in longest))

# --- TS vs TT on taller grids --------------------------------------------------
print("\nflat tree vs binary tree as the panel gets taller (q=2):")
print(f"{'grid':>8} {'TS tasks':>9} {'TS cp':>6} {'TT tasks':>9} {'TT cp':>6}")
for p in (4, 8, 16, 32):
    ts = build_dag(p, 2)
    tt = build_dag(p, 2, "TT")
    print(f"{p:>5}x2 {len(ts):>9} {critical_path_length(ts):>6.0f} "
          f"{len(tt):>9} {critical_path_length(tt):>6.0f}")
print("\nTT's logarithmic reduction tree shortens the critical path for "
      "tall panels\n(Bouwmeester et al. [6]) at the cost of extra tasks — "
      "the paper's flat tree\nkeeps the panel on one device, which its "
      "main-device design requires.")
