#!/usr/bin/env python
"""The paper's workflow: plan tiled QR for a CPU + 3-GPU system.

Walks through all three of the paper's optimizations on the Table II
testbed (i7-3820 + GTX580 + 2x GTX680):

1. main-computing-device selection (Alg. 2),
2. number-of-devices optimization via Top + Tcomm (Alg. 3, Eqs. 10-11),
3. the distribution guide array (Alg. 4, Eq. 12),

then simulates execution and compares against forcing other choices.

Run:  python examples/heterogeneous_planning.py
"""

from repro import Optimizer, TiledQR, paper_testbed
from repro.analysis import format_table
from repro.baselines import forced_main_plan
from repro.core.main_device import main_device_candidates

system = paper_testbed()
optimizer = Optimizer(system)
qr = TiledQR(system)

N = 3200
GRID = N // 16

# --- 1. main device ---------------------------------------------------------
cands = main_device_candidates(system, GRID, GRID, 16)
print("Alg. 2 candidates:",
      [f"{d.device_id} ({d.update_throughput(16)/1e6:.2f} Mtiles/s)" for d in cands])

plan = optimizer.plan(matrix_size=N)
print(f"selected main device: {plan.main_device} "
      f"(slowest updater that still keeps up with the panel chain)\n")

# --- 2. number of devices ---------------------------------------------------
rows = [
    [r.num_devices, r.t_op * 1e3, r.t_comm * 1e3, r.total * 1e3,
     "<-- optimal" if r.num_devices == plan.notes["optimal_num_devices"] else ""]
    for r in plan.notes["predicted"]
]
print(format_table(
    ["p", "Top (ms)", "Tcomm (ms)", "total (ms)", ""],
    rows,
    title=f"Alg. 3 prediction for {N}x{N} (devices ordered by update speed)",
))

# --- 3. guide array ----------------------------------------------------------
print(f"\nthroughput ratio: {plan.notes['ratio']}")
print(f"guide array: {list(plan.guide_array)}")
print(f"column owners 0..9: {[plan.column_owner(j) for j in range(10)]}\n")

# --- simulate and compare -----------------------------------------------------
run = qr.simulate(N, plan=plan)
print(f"simulated makespan with the optimized plan: {run.report.makespan:.3f} s")
print(f"communication share: {run.report.comm_fraction * 100:.1f}%")
for d, busy in sorted(run.report.compute_busy.items()):
    print(f"  {d:10s} busy {busy:.3f} s "
          f"({100 * busy / run.report.makespan:.0f}% of makespan)")

print("\nwhat if we forced other mains?")
for main in ("gtx680-0", "cpu-0"):
    alt = qr.simulate(N, plan=forced_main_plan(system, main, GRID, GRID, 16))
    print(f"  main={main:10s} -> {alt.report.makespan:8.3f} s "
          f"({alt.report.makespan / run.report.makespan:.2f}x)")
