#!/usr/bin/env python
"""Quickstart: tiled QR decomposition in three lines.

Factorizes a random matrix with the from-scratch Householder tile
kernels, validates A = QR, and solves a linear system with the factors
(the use case the paper's Eqs. 1-3 motivate).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import tiled_qr

# --- factorize -----------------------------------------------------------
rng = np.random.default_rng(2013)
n = 256
a = rng.standard_normal((n, n))

f = tiled_qr(a, tile_size=16)          # the paper's tile size

# --- inspect the factors ---------------------------------------------------
q = f.q_dense()
r = f.r_dense()
print(f"A is {a.shape}, split into a {f.r.grid_shape} grid of "
      f"{f.tile_size}x{f.tile_size} tiles")
print(f"reconstruction  ||A - QR|| / ||A||  = "
      f"{np.linalg.norm(a - q @ r) / np.linalg.norm(a):.3e}")
print(f"orthogonality   ||Q^T Q - I||       = "
      f"{np.linalg.norm(q.T @ q - np.eye(n)):.3e}")
print(f"R strictly-lower max |entry|        = "
      f"{np.abs(np.tril(r, -1)).max():.3e}")

# --- solve A x = b without ever forming Q (Eqs. 2-3) ----------------------
x_true = rng.standard_normal(n)
b = a @ x_true
x = f.solve(b)
print(f"solve error     ||x - x_true||/||x|| = "
      f"{np.linalg.norm(x - x_true) / np.linalg.norm(x_true):.3e}")

# --- implicit operators ----------------------------------------------------
# Q is stored as a log of block reflectors; applying it is O(n^2 b), not O(n^3).
y = f.apply_qt(b)      # Q^T b
z = f.apply_q(y)       # Q (Q^T b) == b
print(f"implicit Q roundtrip error          = "
      f"{np.linalg.norm(z - b) / np.linalg.norm(b):.3e}")
