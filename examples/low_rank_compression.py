#!/usr/bin/env python
"""Data analysis example: low-rank compression with randomized QR.

The intro motivates QR for "data analysis of various domains"; a
workhorse modern use is randomized low-rank approximation, whose inner
orthonormalization step is exactly this library's tiled QR.  We build a
synthetic "sensor field" image (smooth structure + noise = rapidly
decaying spectrum), compress it with the randomized range finder at
several target ranks, and report storage vs error.

Run:  python examples/low_rank_compression.py
"""

import numpy as np

from repro.linalg import low_rank_approx

rng = np.random.default_rng(5)

# --- a synthetic 2-D field with low-rank structure --------------------------
H, W = 240, 320
y = np.linspace(0, 4 * np.pi, H)[:, None]
x = np.linspace(0, 3 * np.pi, W)[None, :]
field = (
    np.outer(np.sin(y[:, 0]), np.cos(x[0]))
    + 0.5 * np.outer(np.cos(2 * y[:, 0]), np.sin(3 * x[0]))
    + 0.25 * np.outer(y[:, 0] / y.max(), x[0] / x.max())
    + 0.02 * rng.standard_normal((H, W))
)

full_storage = field.size
norm = np.linalg.norm(field)

print(f"field: {H}x{W} ({full_storage} values), "
      f"effective spectrum decays fast (3 structured modes + noise)\n")
print(f"{'rank k':>7} {'storage':>9} {'ratio':>7} {'rel. error':>11}")
for k in (1, 2, 3, 5, 10, 20):
    q, b = low_rank_approx(field, k=k, oversample=0, power_iters=2, seed=1)
    stored = q.size + b.size
    err = np.linalg.norm(field - q @ b) / norm
    print(f"{k:>7} {stored:>9} {full_storage / stored:>6.1f}x {err:>11.2e}")

print("""
by rank 3 the structured part is captured (error drops to the noise
floor ~3e-2); beyond that extra rank only memorizes noise.  The
orthonormal factor q comes from this library's tiled Householder QR —
the same kernels the ICPP'13 paper schedules across CPU and GPUs.""")

# --- sanity: the basis is really orthonormal -------------------------------
q, _ = low_rank_approx(field, k=3, oversample=0, seed=1)
print(f"basis orthonormality ||Q^T Q - I|| = "
      f"{np.linalg.norm(q.T @ q - np.eye(q.shape[1])):.2e}")
