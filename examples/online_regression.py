#!/usr/bin/env python
"""Streaming data analysis: sliding-window regression via QR updating.

The intro motivates QR for "data analysis of various domains"; live data
keeps arriving.  Refactorizing on every new sample costs O(m n^2) —
Givens-rotation updates of the R factor cost O(n^2) per sample and give
the numerically-stable equivalent of recursive least squares.

The scenario: a sensor whose calibration drifts abruptly; a
sliding-window fit forgets the old regime, a growing-window fit is
dragged by it.

Run:  python examples/online_regression.py
"""

import numpy as np

from repro.linalg import StreamingLeastSquares

rng = np.random.default_rng(42)

FEATURES = 4
WINDOW = 64
DRIFT_AT = 300
STEPS = 600

beta_before = np.array([2.0, -1.0, 0.5, 3.0])
beta_after = np.array([-1.0, 2.5, 1.5, -0.5])


def sample(step: int) -> tuple[np.ndarray, float]:
    beta = beta_before if step < DRIFT_AT else beta_after
    x = rng.standard_normal(FEATURES)
    y = float(x @ beta) + 0.05 * rng.standard_normal()
    return x, y


sliding = StreamingLeastSquares(FEATURES, window=WINDOW)
growing = StreamingLeastSquares(FEATURES)

print(f"{'step':>6} {'sliding err':>12} {'growing err':>12}")
for step in range(STEPS):
    x, y = sample(step)
    sliding.add(x, y)
    growing.add(x, y)
    if step >= FEATURES and step % 100 == 99:
        truth = beta_before if step < DRIFT_AT else beta_after
        es = np.linalg.norm(sliding.coefficients() - truth)
        eg = np.linalg.norm(growing.coefficients() - truth)
        print(f"{step + 1:>6} {es:>12.4f} {eg:>12.4f}")

print(f"""
after the drift at step {DRIFT_AT}, the sliding window ({WINDOW} samples)
re-converges to the new coefficients once the old regime ages out, while
the growing window stays biased by everything it ever saw.

final sliding-window coefficients: {np.round(sliding.coefficients(), 3)}
ground truth after drift:          {beta_after}
window population: {sliding.num_observations} samples (constant);
each update cost O(n^2) Givens work instead of an O(m n^2) refit.""")

print("\nvalidation: streaming state equals a cold batch fit on the same "
      "window (see tests/test_givens_streaming.py for the exact check).")
