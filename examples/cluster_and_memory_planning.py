#!/usr/bin/env python
"""The paper's future work, running: multi-node clusters and huge matrices.

Sec. VIII proposes extending the optimization to "a multi node
environment" and handling "a lack of memory problem ... for very large
matrix sizes".  Both extensions exist in this library; this example
walks a capacity-planning session:

1. will a 48000^2 QR fit the paper's single node? (no — check why)
2. what would an out-of-core schedule cost?
3. does adding a second identical node help? (Alg. 3 decides)
4. what kind of distribution *would* use the second node?

Run:  python examples/cluster_and_memory_planning.py
"""

from repro import Optimizer, paper_testbed
from repro.cluster import ClusterSpec, NodeSpec, cluster_topology
from repro.core.memory import check_memory, out_of_core_estimate
from repro.sim.iteration import simulate_iteration_level
from repro.sim.rowblock import simulate_rowblock_level

N = 48000
GRID = N // 16

# --- 1. single node: memory feasibility -----------------------------------
system = paper_testbed()
opt = Optimizer(system)
plan = opt.plan(matrix_size=N)
report = check_memory(plan, GRID, GRID)
print(f"{N}x{N} single-precision tiled QR on the paper's node:")
for dev, used in report.per_device_bytes.items():
    cap = report.capacities[dev]
    cap_s = f"{cap / 2**30:.1f} GiB" if cap else "unbounded"
    flag = "" if cap is None or used <= cap else "   <-- EXCEEDS MEMORY"
    print(f"  {dev:10s} needs {used / 2**30:5.2f} GiB of {cap_s}{flag}")
print(f"fits in core: {report.feasible}")

# --- 2. out-of-core schedule -------------------------------------------------
t_in_core = simulate_iteration_level(plan, GRID, GRID, system, opt.topology).makespan
ooc = out_of_core_estimate(plan, GRID, GRID, t_in_core, opt.topology)
print(f"\nout-of-core: {ooc.passes} column super-panels, "
      f"{ooc.extra_bytes / 2**30:.1f} GiB of factors re-streamed, "
      f"{ooc.overhead * 100:.2f}% slower than the (hypothetical) in-core run "
      f"({ooc.makespan:.0f} s)")

# --- 3. add a node: does the optimizer even want it? -----------------------
cluster = ClusterSpec(
    name="two-nodes",
    nodes=(NodeSpec("node0", system.devices), NodeSpec("node1", system.devices)),
)
csys = cluster.flatten()
ctop = cluster_topology(cluster)
copt = Optimizer(csys, ctop)
cplan = copt.plan(matrix_size=N)
remote = [
    d for d in cplan.participants
    if cluster.node_of(d) != cluster.node_of(cplan.main_device)
]
print(f"\ntwo-node cluster: Alg. 3 enlists {cplan.num_devices} devices, "
      f"{len(remote)} of them remote")
if remote:
    print("  -> at this size the n^3 update work finally amortizes the "
          "network-priced\n     per-panel broadcasts (Eq. 11), so remote "
          "devices pay off; at the paper's\n     evaluation sizes "
          "(<= 16000) the optimizer keeps everything on one node.")
else:
    print("  -> the column scheme's per-panel factor broadcast never "
          "amortizes over the\n     network at this size, so the optimizer "
          "correctly keeps the work on one node.")

# --- 4. what would use the second node: CA-QR row blocks -------------------
M_DEMO = 9600  # row-block sim at full 48000 takes a while; the shape is the same
g = M_DEMO // 16
t_col = simulate_iteration_level(
    copt.plan(matrix_size=M_DEMO), g, g, csys, ctop
).makespan
t_row = simulate_rowblock_level(
    csys, list(csys.device_ids), g, g, 16, ctop, layout="cyclic"
).makespan
print(f"\nat {M_DEMO}^2 on the two-node cluster:")
print(f"  column distribution (paper): {t_col:8.1f} s")
print(f"  CA-QR row blocks, all nodes: {t_row:8.1f} s")
winner = "row blocks" if t_row < t_col else "the column scheme"
print(f"{winner} win(s) at this size: row-block trees pay a logarithmic "
      f"R-merge per panel\ninstead of a broadcast but add pairwise trailing "
      f"exchanges — the balance tips with\nmatrix size and network quality "
      f"(see `python -m repro experiment caqr-comparison`).")
