#!/usr/bin/env python
"""Inspect how tiled QR actually executes on the modelled hardware.

Runs the task-level discrete-event simulator on the paper's testbed,
renders an ASCII Gantt chart of every device (and the transfers), writes
a Chrome-tracing JSON you can open in chrome://tracing or Perfetto, and
prints per-device utilization — making the paper's Fig. 5/Fig. 7
behaviour visible at task granularity.

Run:  python examples/execution_traces.py
"""

from pathlib import Path

from repro import Optimizer, paper_testbed
from repro.comm.topology import pcie_star
from repro.dag import build_dag
from repro.sim import simulate_task_level
from repro.sim.gantt import ascii_gantt, to_chrome_trace

system = paper_testbed()
topology = pcie_star(system.devices)
optimizer = Optimizer(system, topology)

N = 320
GRID = N // 16
plan = optimizer.plan(matrix_size=N, num_devices=3)
print(plan.describe())

dag = build_dag(GRID, GRID)
trace = simulate_task_level(dag, plan, system, topology)

# --- ASCII Gantt --------------------------------------------------------
print()
print(ascii_gantt(trace, width=96))

# --- per-device utilization ----------------------------------------------
report = trace.report()
print()
print(f"communication share: {report.comm_fraction * 100:.1f}%")
util = report.utilization({d.device_id: d.slots for d in system})
for dev, u in sorted(util.items()):
    busy = report.compute_busy.get(dev, 0.0)
    print(f"  {dev:10s} slot-utilization {u * 100:5.1f}%  "
          f"(busy {busy * 1e3:.2f} ms of {report.makespan * 1e3:.2f} ms)")

# --- Chrome trace export ----------------------------------------------------
out = Path(__file__).resolve().parent / "trace_320.json"
out.write_text(to_chrome_trace(trace))
print(f"\nChrome trace written to {out}")
print("open chrome://tracing (or https://ui.perfetto.dev) and load it.")

# --- where does the time go? -------------------------------------------------
by_step = trace.step_time()
total = sum(by_step.values())
print("\nkernel time by paper step:")
for step, secs in by_step.items():
    print(f"  {step.value:3s} {secs * 1e3:8.2f} ms ({100 * secs / total:4.1f}%)")
