#!/usr/bin/env python
"""Data analysis with tiled QR: polynomial least-squares fitting.

The paper motivates QR decomposition as "the basis for solving some
systems of linear equations, so it is widely used in data analysis of
various domains" (Sec. I).  This example fits a degree-7 polynomial to
noisy samples by solving the tall least-squares problem

    min_x || V x - y ||_2

via the tiled QR of the Vandermonde matrix V: with V = QR,
x = R1^-1 (Q^T y)[:n] — no normal equations, no loss of conditioning.

Run:  python examples/least_squares_regression.py
"""

import numpy as np

from repro import tiled_qr
from repro.runtime.factorization import back_substitution

rng = np.random.default_rng(7)

# --- synthesize noisy samples of a known polynomial -----------------------
DEGREE = 7
M = 480                      # samples (tall system: 480 x 8)
true_coeffs = rng.standard_normal(DEGREE + 1)
t = np.linspace(-1.0, 1.0, M)
y_clean = np.polyval(true_coeffs, t)
y = y_clean + 0.05 * rng.standard_normal(M)

# --- build the Vandermonde matrix and factorize it tile-wise ----------------
v = np.vander(t, DEGREE + 1)                   # 480 x 8
f = tiled_qr(v, tile_size=16)

# --- least squares through the implicit Q ----------------------------------
qty = f.apply_qt(y)                            # Q^T y, length 480
r1 = f.r_dense()[: DEGREE + 1, : DEGREE + 1]   # leading triangle
x = back_substitution(r1, qty[: DEGREE + 1, None])[:, 0]

# --- report ------------------------------------------------------------------
x_ref, *_ = np.linalg.lstsq(v, y, rcond=None)
residual = np.linalg.norm(v @ x - y)
print(f"fit of a degree-{DEGREE} polynomial to {M} noisy samples")
print(f"residual ||Vx - y||            = {residual:.4f}")
print(f"match vs numpy.linalg.lstsq    = {np.linalg.norm(x - x_ref):.3e}")
print(f"coefficient error vs ground truth = "
      f"{np.linalg.norm(x - true_coeffs) / np.linalg.norm(true_coeffs):.3e}")
print("\n coeff      fitted      true")
for i, (xi, ci) in enumerate(zip(x, true_coeffs)):
    print(f"  t^{DEGREE - i}   {xi:9.4f} {ci:9.4f}")
