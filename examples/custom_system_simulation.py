#!/usr/bin/env python
"""Extending the paper: plan tiled QR for systems that never existed.

The paper's conclusion proposes extending the optimization "into other
computing devices, or a multi node environment".  Because every policy
here consumes only device models and link speeds, we can ask what the
optimizer would do on hypothetical machines:

* a box with many slow GPUs vs one with few fast GPUs,
* an accelerator-augmented node (a Xeon-Phi-like device: mid per-tile
  speed, huge parallelism),
* a degraded interconnect (cheap PCIe switch).

Run:  python examples/custom_system_simulation.py
"""

from repro import Optimizer, TiledQR
from repro.analysis import format_table
from repro.comm.topology import pcie_star
from repro.dag.tasks import Step
from repro.devices import DeviceKind, DeviceSpec, KernelTimingModel, make_system
from repro.devices.calibration import paper_cpu_i7_3820, paper_gtx580

N = 3200


def phi_like(device_id: str) -> DeviceSpec:
    """A Xeon-Phi-style accelerator: 61 slow-ish cores, wide updates."""
    return DeviceSpec(
        device_id=device_id,
        name="Phi-like accelerator",
        kind=DeviceKind.ACCELERATOR,
        cores=61,
        slots=61,
        timing=KernelTimingModel(
            overheads_s={Step.T: 15e-6, Step.E: 15e-6, Step.UT: 2e-6, Step.UE: 2e-6},
            rates_flops={Step.T: 0.05e9, Step.E: 0.09e9, Step.UT: 0.9e9, Step.UE: 1.0e9},
        ),
    )


def summarize(name, system, bandwidth=6e9, latency=50e-6):
    topology = pcie_star(system.devices, bandwidth=bandwidth, latency=latency)
    opt = Optimizer(system, topology)
    qr = TiledQR(system, topology)
    plan = opt.plan(matrix_size=N)
    run = qr.simulate(N, plan=plan, fidelity="iteration")
    return [
        name,
        plan.main_device,
        plan.num_devices,
        " ".join(f"{r}" for r in plan.notes["ratio"]),
        run.report.makespan,
        run.report.comm_fraction * 100,
    ]


rows = []

# The paper's testbed as the reference point.
from repro import paper_testbed
rows.append(summarize("paper testbed", paper_testbed()))

# Many slow GPUs: four GTX580-class devices at 60% speed.
slow = [paper_cpu_i7_3820("cpu-0")]
for i in range(4):
    base = paper_gtx580(f"slowgpu-{i}")
    slow.append(
        DeviceSpec(
            device_id=base.device_id, name="Slow GPU", kind=base.kind,
            cores=base.cores, slots=base.slots,
            timing=KernelTimingModel(
                overheads_s=dict(base.timing.overheads_s),
                rates_flops={s: r * 0.6 for s, r in base.timing.rates_flops.items()},
            ),
        )
    )
rows.append(summarize("4x slow GPUs", make_system("slow-gpus", slow)))

# Accelerator-augmented node (the paper's future-work direction).
rows.append(
    summarize(
        "CPU + GTX580 + Phi-like",
        make_system(
            "phi-node",
            [paper_cpu_i7_3820("cpu-0"), paper_gtx580("gtx580-0"), phi_like("phi-0")],
        ),
    )
)

# The paper testbed behind a terrible interconnect.
rows.append(
    summarize("testbed, 10x worse PCIe", paper_testbed(), bandwidth=6e8, latency=500e-6)
)

print(format_table(
    ["system", "main device", "p", "ratio", "makespan (s)", "comm %"],
    rows,
    title=f"optimizer decisions for a {N}x{N} tiled QR on hypothetical systems",
))
print(
    "\nNote how the optimizer reacts: slow links push the device count down,\n"
    "wide accelerators absorb update columns, and the main device follows\n"
    "the panel-chain/update-throughput trade-off, not raw speed."
)
